package backend

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"datamime/internal/datagen"
	"datamime/internal/profile"
	"datamime/internal/telemetry"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Name is the worker's self-reported identity (required in practice;
	// defaults to "worker").
	Name string
	// Capacity bounds concurrent evaluations (default 1). Requests beyond
	// capacity queue up to MaxBacklog, then shed with HTTP 503 so the
	// dispatcher retries elsewhere.
	Capacity int
	// MaxBacklog bounds queued (admitted but not yet running) evaluations
	// (default = Capacity).
	MaxBacklog int
	// ProfileWorkers is the intra-profile parallelism per evaluation
	// (default GOMAXPROCS, shared across concurrent evaluations through
	// one budget).
	ProfileWorkers int
	// CacheCapacity bounds the worker-local profile cache (default 1024).
	CacheCapacity int
	// Coordinator, when non-empty, is the coordinator base URL whose
	// /v1/cache endpoint becomes the worker's shared cache tier.
	Coordinator string
	// Generators registers extra generators beyond the built-in set.
	Generators []datagen.Generator
	// Version is the worker binary's build version, reported in health
	// probes and heartbeats so the coordinator can surface version skew.
	Version string
}

// Worker is the evaluation server behind cmd/datamime-worker: a
// LocalBackend fronted by admission control, a two-tier profile cache, and
// the versioned HTTP protocol (POST /v1/evaluate, GET /v1/healthz,
// GET /metrics).
type Worker struct {
	cfg   WorkerConfig
	local *LocalBackend
	cache *TieredCache
	reg   *telemetry.Registry

	// sem holds one token per admitted-and-running evaluation; queued
	// counts admitted requests (running included) for the 503 shed check.
	sem    chan struct{}
	queued atomic.Int64

	evals          atomic.Uint64
	evalErrors     atomic.Uint64
	busyRejects    atomic.Uint64
	spansTruncated atomic.Uint64
	started        time.Time
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.MaxBacklog <= 0 {
		cfg.MaxBacklog = cfg.Capacity
	}
	if cfg.ProfileWorkers <= 0 {
		cfg.ProfileWorkers = runtime.GOMAXPROCS(0)
	}
	local := NewLocalBackend(cfg.Generators...)
	local.ProfileWorkers = cfg.ProfileWorkers
	if cap := cfg.Capacity * cfg.ProfileWorkers; cap > 1 {
		// One machine-wide budget across concurrent evaluations, so
		// Capacity × ProfileWorkers goroutines never oversubscribe.
		local.Budget = profile.NewBudget(maxInt(cfg.Capacity, cfg.ProfileWorkers))
	}
	var cc *CacheClient
	if cfg.Coordinator != "" {
		cc = NewCacheClient(cfg.Coordinator)
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 1024
	}
	w := &Worker{
		cfg:     cfg,
		local:   local,
		cache:   NewTieredCache(NewLRU(cfg.CacheCapacity), cc),
		sem:     make(chan struct{}, cfg.Capacity),
		started: time.Now(),
	}
	w.reg = w.buildMetrics()
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name returns the worker's self-reported identity.
func (w *Worker) Name() string { return w.cfg.Name }

// Capacity returns the worker's concurrent-evaluation bound.
func (w *Worker) Capacity() int { return w.cfg.Capacity }

// CacheStats exposes the two-tier cache counters (for tests and metrics).
func (w *Worker) CacheStats() TieredStats { return w.cache.Stats() }

// buildMetrics assembles the worker's /metrics registry.
func (w *Worker) buildMetrics() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.NewGaugeFunc("datamime_worker_capacity", "Maximum concurrent evaluations.",
		func() float64 { return float64(w.cfg.Capacity) })
	reg.NewGaugeFunc("datamime_worker_inflight", "Admitted evaluations (running + queued).",
		func() float64 { return float64(w.queued.Load()) })
	reg.NewCounterFunc("datamime_worker_evaluations_total", "Evaluations served.",
		func() float64 { return float64(w.evals.Load()) })
	reg.NewCounterFunc("datamime_worker_evaluation_errors_total", "Evaluations that failed.",
		func() float64 { return float64(w.evalErrors.Load()) })
	reg.NewCounterFunc("datamime_worker_busy_rejects_total", "Requests shed with 503 at capacity.",
		func() float64 { return float64(w.busyRejects.Load()) })
	reg.NewCounterFunc("datamime_worker_spans_truncated_total", "Telemetry spans dropped at the MaxWireSpans response cap.",
		func() float64 { return float64(w.spansTruncated.Load()) })
	reg.NewCounterFunc("datamime_worker_cache_local_hits_total", "Evaluations served from the worker-local cache tier.",
		func() float64 { return float64(w.cache.Stats().LocalHits) })
	reg.NewCounterFunc("datamime_worker_cache_shared_hits_total", "Evaluations served from the coordinator's shared cache tier.",
		func() float64 { return float64(w.cache.Stats().RemoteHits) })
	reg.NewCounterFunc("datamime_worker_cache_misses_total", "Cache lookups that missed both tiers.",
		func() float64 { return float64(w.cache.Stats().Misses) })
	reg.NewCounterFunc("datamime_worker_cache_shared_errors_total", "Shared-tier round-trips that failed (degraded to local-only).",
		func() float64 { return float64(w.cache.Stats().RemoteErrors) })
	reg.NewGaugeFunc("datamime_worker_uptime_seconds", "Seconds since the worker started.",
		func() float64 { return time.Since(w.started).Seconds() })
	telemetry.RegisterRuntimeMetrics(reg, "datamime_worker")
	return reg
}

// Handler returns the worker's HTTP API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathEvaluate, w.handleEvaluate)
	mux.HandleFunc("GET "+PathHealthz, w.handleHealthz)
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.reg.WritePrometheus(rw)
	})
	return mux
}

// Health reports the worker's handshake body. The wall-clock stamp makes
// every health round trip a clock-offset sample for the coordinator.
func (w *Worker) Health() WorkerHealth {
	return WorkerHealth{
		Protocol: ProtocolVersion,
		Name:     w.cfg.Name,
		Capacity: w.cfg.Capacity,
		Inflight: int(w.queued.Load()),
		Evals:    w.evals.Load(),
		Version:  w.cfg.Version,
		TimeNS:   time.Now().UnixNano(),
	}
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	writeWire(rw, http.StatusOK, w.Health())
}

// handleEvaluate serves one evaluation: admission control, the two-tier
// cache, then the local backend. Cache hits and fresh measurements are
// byte-identical by construction, so serving from cache never breaks the
// determinism contract.
func (w *Worker) handleEvaluate(rw http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeWire(rw, http.StatusBadRequest, wireError{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if err := req.Validate(); err != nil {
		writeWire(rw, http.StatusBadRequest, wireError{Error: err.Error()})
		return
	}
	// Admission: shed once running + queued requests exceed the backlog
	// bound, so the dispatcher re-routes instead of piling onto a busy
	// worker.
	if int(w.queued.Add(1)) > w.cfg.Capacity+w.cfg.MaxBacklog {
		w.queued.Add(-1)
		w.busyRejects.Add(1)
		writeWire(rw, http.StatusServiceUnavailable, wireError{Error: "worker is at capacity"})
		return
	}
	defer w.queued.Add(-1)
	select {
	case w.sem <- struct{}{}:
	case <-r.Context().Done():
		writeWire(rw, http.StatusServiceUnavailable, wireError{Error: "canceled while queued"})
		return
	}
	defer func() { <-w.sem }()

	// The cache probe is itself observable: when the request carries a
	// TraceID, the lookup becomes a cache.probe span in the response
	// envelope, hit or miss.
	var spans []WireSpan
	if req.Key != "" {
		probeStart := time.Now()
		p, tier, ok := w.cache.GetTier(req.Key)
		if req.TraceID != "" {
			attrs := map[string]float64{telemetry.AttrCacheHit: 0}
			if ok {
				attrs[telemetry.AttrCacheHit] = 1
				attrs[telemetry.AttrCacheTier] = 1
				if tier == TierShared {
					attrs[telemetry.AttrCacheTier] = 2
				}
			}
			spans = append(spans, WireSpan{
				Phase:  telemetry.PhaseCacheProbe,
				DurNS:  time.Since(probeStart).Nanoseconds(),
				TimeNS: time.Now().UnixNano(),
				Attrs:  attrs,
			})
		}
		if ok {
			w.evals.Add(1)
			w.respond(rw, EvalResult{
				Profile:   p,
				Worker:    w.cfg.Name,
				CacheTier: tier,
			}, spans, req.TraceID)
			return
		}
	}
	res, err := w.local.Evaluate(r.Context(), req)
	if err != nil {
		w.evalErrors.Add(1)
		status := http.StatusInternalServerError
		if r.Context().Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeWire(rw, status, wireError{Error: err.Error()})
		return
	}
	if req.Key != "" {
		w.cache.Put(req.Key, res.Profile)
	}
	res.Worker = w.cfg.Name
	spans = append(spans, res.Spans...)
	w.evals.Add(1)
	w.respond(rw, res, spans, req.TraceID)
}

// respond writes the /v1/evaluate envelope: the deterministic result plus —
// only when trace context was propagated — the captured spans and the
// worker's wall clock.
func (w *Worker) respond(rw http.ResponseWriter, res EvalResult, spans []WireSpan, traceID string) {
	resp := EvalResponse{EvalResult: res, TimeNS: time.Now().UnixNano()}
	if traceID != "" {
		if len(spans) > MaxWireSpans {
			resp.SpansTruncated = len(spans) - MaxWireSpans
			w.spansTruncated.Add(uint64(resp.SpansTruncated))
			spans = spans[:MaxWireSpans]
		}
		resp.Spans = spans
	}
	writeWire(rw, http.StatusOK, resp)
}

// RunAnnouncer keeps the worker registered with a coordinator: announce
// immediately, re-announce every interval (heartbeat), and withdraw on
// context cancellation. Errors are reported through onErr (nil ignores
// them) — a briefly unreachable coordinator only delays registration.
func (w *Worker) RunAnnouncer(ctx context.Context, coordinator, selfURL string, interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	reg := WorkerRegistration{
		URL:      selfURL,
		Name:     w.cfg.Name,
		Capacity: w.cfg.Capacity,
		Version:  w.cfg.Version,
	}
	announce := func() {
		// Each heartbeat snapshots the current load so the coordinator's
		// fleet listing tracks inflight even between health probes.
		reg.Inflight = int(w.queued.Load())
		if err := Announce(ctx, coordinator, reg); err != nil && onErr != nil {
			onErr(err)
		}
	}
	announce()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			// Best-effort clean withdrawal with a fresh, bounded context.
			wctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = Withdraw(wctx, coordinator, selfURL)
			cancel()
			return
		case <-t.C:
			announce()
		}
	}
}

// writeWire writes one protocol JSON response.
func writeWire(rw http.ResponseWriter, status int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}
