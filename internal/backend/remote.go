package backend

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// Wire endpoints. A worker serves /v1/evaluate and /v1/healthz; a
// coordinator serves /v1/cache/{key} (the shared cache tier) and
// /v1/workers (fleet registration).
const (
	PathEvaluate = "/v1/evaluate"
	PathHealthz  = "/v1/healthz"
	PathCache    = "/v1/cache/"
	PathWorkers  = "/v1/workers"
)

// ErrBusy is returned by a RemoteBackend when the worker sheds load (HTTP
// 503): its in-flight and backlog slots are full. The dispatcher treats it
// like any other attempt failure — retry elsewhere, then fall back local —
// but it does not count against the worker's failure limit, since a
// saturated worker is healthy.
var ErrBusy = fmt.Errorf("backend: worker is at capacity")

// WorkerHealth is the /v1/healthz body: the protocol handshake plus the
// worker's advertised identity and load.
type WorkerHealth struct {
	Protocol int    `json:"protocol"`
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
	Inflight int    `json:"inflight"`
	Evals    uint64 `json:"evals_total"`
	// Version is the worker binary's build version (buildinfo), so version
	// skew across a fleet is visible from the coordinator.
	Version string `json:"version,omitempty"`
	// TimeNS is the worker's wall clock (UnixNano) when the probe was
	// answered — the clock-offset sample every health round trip yields.
	TimeNS int64 `json:"time_ns,omitempty"`
}

// wireError is the JSON error body of every non-2xx protocol response.
type wireError struct {
	Error string `json:"error"`
}

// RemoteBackend speaks the evaluation protocol to one datamime-worker.
type RemoteBackend struct {
	name string
	base string
	hc   *http.Client

	// capacity is the worker's advertised concurrency, refreshed by every
	// Health probe (0 until the first one answers).
	capacity atomic.Int64
	// version is the worker's self-reported build version, refreshed by
	// every Health probe.
	version atomic.Value // string
	// clock accumulates midpoint clock-offset samples from health and
	// evaluate round trips.
	clock clockFilter
}

// NewRemoteBackend builds a client for the worker at baseURL (e.g.
// "http://host:9090"). name defaults to the URL; an explicit name (the
// worker's self-registration name) makes telemetry friendlier.
func NewRemoteBackend(baseURL, name string) *RemoteBackend {
	base := strings.TrimRight(baseURL, "/")
	if name == "" {
		name = base
	}
	return &RemoteBackend{
		name: name,
		base: base,
		hc:   &http.Client{},
	}
}

// URL returns the worker's base URL (the fleet's dedup key).
func (r *RemoteBackend) URL() string { return r.base }

// Name implements EvalBackend.
func (r *RemoteBackend) Name() string { return r.name }

// Capacity implements EvalBackend: the worker's advertised concurrency as
// of the last successful health probe.
func (r *RemoteBackend) Capacity() int { return int(r.capacity.Load()) }

// SetCapacity seeds the advertised capacity (e.g. from a registration
// message) before the first health probe.
func (r *RemoteBackend) SetCapacity(n int) { r.capacity.Store(int64(n)) }

// Version returns the worker's build version as of the last successful
// health probe ("" until one answers).
func (r *RemoteBackend) Version() string {
	v, _ := r.version.Load().(string)
	return v
}

// SetVersion seeds the reported version (e.g. from a registration message)
// before the first health probe.
func (r *RemoteBackend) SetVersion(v string) {
	if v != "" {
		r.version.Store(v)
	}
}

// Clock returns the current worker-clock offset estimate and whether any
// round trip has produced one yet.
func (r *RemoteBackend) Clock() (ClockEstimate, bool) { return r.clock.estimate() }

// Health implements EvalBackend: GET /v1/healthz, verifying the protocol
// version and refreshing the advertised capacity.
func (r *RemoteBackend) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+PathHealthz, nil)
	if err != nil {
		return err
	}
	t0 := time.Now().UnixNano()
	resp, err := r.hc.Do(req)
	t2 := time.Now().UnixNano()
	if err != nil {
		return fmt.Errorf("backend: health %s: %w", r.name, err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("backend: health %s: HTTP %d", r.name, resp.StatusCode)
	}
	var h WorkerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("backend: health %s: decoding: %w", r.name, err)
	}
	if h.Protocol != ProtocolVersion {
		return fmt.Errorf("backend: worker %s speaks protocol %d, want %d", r.name, h.Protocol, ProtocolVersion)
	}
	if h.Capacity > 0 {
		r.capacity.Store(int64(h.Capacity))
	}
	r.SetVersion(h.Version)
	r.clock.observe(t0, t2, h.TimeNS)
	return nil
}

// Evaluate implements EvalBackend: POST /v1/evaluate and decode the result.
func (r *RemoteBackend) Evaluate(ctx context.Context, req EvalRequest) (EvalResult, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return EvalResult{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+PathEvaluate, bytes.NewReader(body))
	if err != nil {
		return EvalResult{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	t0 := time.Now().UnixNano()
	resp, err := r.hc.Do(hreq)
	t2 := time.Now().UnixNano()
	if err != nil {
		return EvalResult{}, fmt.Errorf("backend: evaluate on %s: %w", r.name, err)
	}
	defer drain(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusServiceUnavailable:
		return EvalResult{}, fmt.Errorf("%w (%s)", ErrBusy, r.name)
	default:
		return EvalResult{}, fmt.Errorf("backend: evaluate on %s: HTTP %d: %s",
			r.name, resp.StatusCode, readWireError(resp.Body))
	}
	var wire EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return EvalResult{}, fmt.Errorf("backend: evaluate on %s: decoding: %w", r.name, err)
	}
	if wire.Profile == nil {
		return EvalResult{}, fmt.Errorf("backend: evaluate on %s: result without a profile", r.name)
	}
	// The response envelope carries the observability sidecars; fold them
	// into the in-memory (never-marshaled) EvalResult fields, and use the
	// worker's response-time stamp as a clock sample. The evaluation itself
	// makes a poor sample (RTT includes simulation time), but the filter
	// keeps the minimum-uncertainty observation, so health probes dominate
	// whenever they exist.
	r.clock.observe(t0, t2, wire.TimeNS)
	res := wire.EvalResult
	res.Spans = wire.Spans
	res.SpansTruncated = wire.SpansTruncated
	if est, ok := r.clock.estimate(); ok {
		res.ClockOffsetNS, res.ClockErrNS, res.ClockOffsetOK = est.OffsetNS, est.UncertaintyNS, true
	}
	if res.Worker == "" {
		res.Worker = r.name
	}
	return res, nil
}

var _ EvalBackend = (*RemoteBackend)(nil)

// WorkerRegistration is the POST /v1/workers body a worker announces itself
// with (and the coordinator's static -worker flag equivalent).
type WorkerRegistration struct {
	// URL is the worker's reachable base URL — the fleet's dedup key.
	URL string `json:"url"`
	// Name is the worker's display name (defaults to the URL).
	Name string `json:"name,omitempty"`
	// Capacity is the worker's max concurrent evaluations.
	Capacity int `json:"capacity,omitempty"`
	// Protocol is the worker's protocol version (ProtocolVersion).
	Protocol int `json:"protocol,omitempty"`
	// Version is the worker binary's build version (buildinfo), carried on
	// every heartbeat so the coordinator can surface fleet version skew.
	Version string `json:"build_version,omitempty"`
	// Inflight is the worker's evaluation load at announce time — a
	// heartbeat-grained load snapshot for /v1/workers and /v1/fleet even
	// when the coordinator's health loop has not probed recently.
	Inflight int `json:"inflight,omitempty"`
}

// Announce registers a worker with a coordinator: POST /v1/workers. Workers
// re-announce periodically; registration is idempotent on URL.
func Announce(ctx context.Context, coordinator string, reg WorkerRegistration) error {
	reg.Protocol = ProtocolVersion
	body, err := json.Marshal(&reg)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(coordinator, "/")+PathWorkers, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := announceClient.Do(req)
	if err != nil {
		return fmt.Errorf("backend: announcing to %s: %w", coordinator, err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("backend: announcing to %s: HTTP %d: %s",
			coordinator, resp.StatusCode, readWireError(resp.Body))
	}
	return nil
}

// Withdraw deregisters a worker from a coordinator: DELETE
// /v1/workers?url=... (a clean shutdown; crashed workers are reaped by the
// coordinator's health loop instead).
func Withdraw(ctx context.Context, coordinator, workerURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		strings.TrimRight(coordinator, "/")+PathWorkers+"?url="+url.QueryEscape(workerURL), nil)
	if err != nil {
		return err
	}
	resp, err := announceClient.Do(req)
	if err != nil {
		return fmt.Errorf("backend: withdrawing from %s: %w", coordinator, err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("backend: withdrawing from %s: HTTP %d", coordinator, resp.StatusCode)
	}
	return nil
}

// announceClient bounds registration round-trips so a dead coordinator
// cannot hang a worker's announce loop or shutdown path.
var announceClient = &http.Client{Timeout: 10 * time.Second}

// readWireError extracts the protocol error message from a non-2xx body.
func readWireError(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var we wireError
	if json.Unmarshal(data, &we) == nil && we.Error != "" {
		return we.Error
	}
	return strings.TrimSpace(string(data))
}

// drain consumes and closes a response body so the connection is reusable.
func drain(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}
