package backend

import (
	"context"
	"fmt"
	"sync"
	"time"

	"datamime/internal/datagen"
	"datamime/internal/harness"
	"datamime/internal/profile"
	"datamime/internal/telemetry"
	"datamime/internal/workload"
)

// LocalBackend evaluates requests in-process with the same profiler the
// search loop would run, resolving generators and workloads from its
// registry. It backs the dispatcher's fleet fallback on the coordinator and
// the actual simulation work inside cmd/datamime-worker. Because the
// profiler is bit-deterministic and the spec excludes all
// speed-not-substance knobs, a LocalBackend evaluation is byte-identical to
// the in-process path for the same request.
type LocalBackend struct {
	// ProfileWorkers bounds intra-profile parallelism (the way-curve
	// sweep) for every evaluation; 0/1 runs sweeps serially. Like
	// profile.Profiler.Workers, it can never change measured values.
	ProfileWorkers int
	// Budget, when non-nil, caps concurrent simulations across all
	// evaluations this backend runs (shared with any other profilers).
	Budget *profile.Budget

	mu   sync.Mutex
	gens map[string]datagen.Generator
}

// NewLocalBackend builds a local backend with the built-in Table III
// generators plus any extras registered.
func NewLocalBackend(extra ...datagen.Generator) *LocalBackend {
	l := &LocalBackend{gens: make(map[string]datagen.Generator)}
	for _, g := range datagen.All() {
		l.gens[g.Name] = g
	}
	for _, g := range extra {
		l.gens[g.Name] = g
	}
	return l
}

// Register adds (or replaces) a generator in the backend's registry.
func (l *LocalBackend) Register(g datagen.Generator) {
	l.mu.Lock()
	l.gens[g.Name] = g
	l.mu.Unlock()
}

// Name implements EvalBackend.
func (l *LocalBackend) Name() string { return "local" }

// Health implements EvalBackend; the in-process backend is always healthy.
func (l *LocalBackend) Health(ctx context.Context) error { return nil }

// Capacity implements EvalBackend; local evaluation is bounded only by the
// shared Budget, so the backend itself advertises no limit.
func (l *LocalBackend) Capacity() int { return 0 }

// resolve builds the benchmark a request describes.
func (l *LocalBackend) resolve(req EvalRequest) (workload.Benchmark, error) {
	switch req.Kind {
	case KindCandidate:
		l.mu.Lock()
		g, ok := l.gens[req.Generator]
		l.mu.Unlock()
		if !ok {
			return workload.Benchmark{}, fmt.Errorf("backend: unknown generator %q", req.Generator)
		}
		return g.Benchmark(req.Params), nil
	case KindTarget:
		w, err := harness.WorkloadByName(req.Workload)
		if err != nil {
			return workload.Benchmark{}, err
		}
		return w.Target, nil
	default:
		return workload.Benchmark{}, fmt.Errorf("backend: unknown request kind %q", req.Kind)
	}
}

// Evaluate implements EvalBackend: reconstruct the profiler from the spec,
// build the benchmark, and measure.
func (l *LocalBackend) Evaluate(ctx context.Context, req EvalRequest) (EvalResult, error) {
	if err := req.Validate(); err != nil {
		return EvalResult{}, err
	}
	pr, err := req.Profiler.Profiler()
	if err != nil {
		return EvalResult{}, err
	}
	pr.Workers = l.ProfileWorkers
	pr.Budget = l.Budget
	// Trace context: a TraceID asks for this evaluation's telemetry back.
	// The collector hangs off the reconstructed profiler only — it observes
	// the measurement, it cannot influence it.
	var col *telemetry.Collector
	if req.TraceID != "" {
		col = &telemetry.Collector{}
		pr.Telemetry = telemetry.New(telemetry.Options{Capacity: 1, OnEvent: col.Record})
	}
	bench, err := l.resolve(req)
	if err != nil {
		return EvalResult{}, err
	}
	start := time.Now()
	p, err := pr.ProfileContext(ctx, bench, req.Seed)
	if err != nil {
		return EvalResult{}, err
	}
	res := EvalResult{
		Profile:    p,
		Worker:     l.Name(),
		DurationNS: time.Since(start).Nanoseconds(),
	}
	if col != nil {
		res.Spans = wireSpans(col.Events())
	}
	return res, nil
}

// wireSpans converts captured telemetry spans to their wire form, capped at
// MaxWireSpans (earliest kept).
func wireSpans(events []telemetry.Event) []WireSpan {
	var out []WireSpan
	for _, ev := range events {
		if ev.Type != telemetry.TypeSpan {
			continue
		}
		out = append(out, WireSpan{
			Phase:  ev.Phase,
			Iter:   ev.Iter,
			DurNS:  ev.DurNS,
			TimeNS: ev.TimeNS,
			Attrs:  ev.Attrs,
		})
		if len(out) >= MaxWireSpans {
			break
		}
	}
	return out
}

var _ EvalBackend = (*LocalBackend)(nil)
