package backend

import (
	"reflect"
	"testing"
)

// TestMidpointOffset: the offset is the worker clock minus the round trip's
// midpoint, the uncertainty half the round trip.
func TestMidpointOffset(t *testing.T) {
	cases := []struct {
		t0, t2, worker  int64
		offset, uncert  int64
	}{
		// Worker 1000ns ahead, 100ns RTT: midpoint 1050, worker reads 2050.
		{1000, 1100, 2050, 1000, 50},
		// Worker 500ns behind.
		{2000, 2200, 1600, -500, 100},
		// Perfectly synchronized, instant round trip.
		{5000, 5000, 5000, 0, 0},
	}
	for _, c := range cases {
		off, unc := MidpointOffset(c.t0, c.t2, c.worker)
		if off != c.offset || unc != c.uncert {
			t.Errorf("MidpointOffset(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.t0, c.t2, c.worker, off, unc, c.offset, c.uncert)
		}
	}
}

// TestClockFilterKeepsMinUncertainty: the filter keeps the minimum-RTT
// sample (the classic queueing-delay defense), counts every sample, and
// ignores unusable ones.
func TestClockFilterKeepsMinUncertainty(t *testing.T) {
	var f clockFilter
	if _, ok := f.estimate(); ok {
		t.Fatal("empty filter reported an estimate")
	}

	f.observe(0, 1000, 600)  // uncertainty 500
	f.observe(0, 100, 10050) // uncertainty 50 — tighter, wins despite wilder offset
	f.observe(0, 4000, 0)    // workerNS == 0 (pre-v2 peer): ignored entirely
	f.observe(100, 50, 75)   // t2 < t0 (clock stepped mid-probe): ignored
	f.observe(0, 2000, 999)  // uncertainty 1000 — looser, loses

	est, ok := f.estimate()
	if !ok {
		t.Fatal("filter with samples reported no estimate")
	}
	if est.UncertaintyNS != 50 {
		t.Errorf("UncertaintyNS = %d, want 50 (min-RTT sample)", est.UncertaintyNS)
	}
	if est.OffsetNS != 10000 {
		t.Errorf("OffsetNS = %d, want 10000", est.OffsetNS)
	}
	if est.Samples != 3 {
		t.Errorf("Samples = %d, want 3 (unusable samples not counted)", est.Samples)
	}
}

// TestRebaseSpansDeterministicMonotonic: under injected skew, rebasing is
// deterministic, order-preserving (a monotonic worker stream stays
// monotonic), leaves unstamped spans alone, and never mutates its input.
func TestRebaseSpansDeterministicMonotonic(t *testing.T) {
	spans := []WireSpan{
		{Phase: "profile.sim", TimeNS: 1_000_000, DurNS: 10},
		{Phase: "profile.sim", TimeNS: 1_000_500, DurNS: 20},
		{Phase: "budget.wait", TimeNS: 0, DurNS: 5}, // unstamped: must stay 0
		{Phase: "profile.sim", TimeNS: 1_002_000, DurNS: 30},
	}
	orig := make([]WireSpan, len(spans))
	copy(orig, spans)

	for _, skew := range []int64{-7_000_000_000, -1, 1, 3_600_000_000_000} {
		a := RebaseSpans(spans, skew)
		b := RebaseSpans(spans, skew)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("skew %d: rebasing is not deterministic", skew)
		}
		if !reflect.DeepEqual(spans, orig) {
			t.Fatalf("skew %d: RebaseSpans mutated its input", skew)
		}
		var prev int64
		for i, ws := range a {
			if orig[i].TimeNS == 0 {
				if ws.TimeNS != 0 {
					t.Fatalf("skew %d: unstamped span was rebased to %d", skew, ws.TimeNS)
				}
				continue
			}
			if want := orig[i].TimeNS - skew; ws.TimeNS != want {
				t.Fatalf("skew %d span %d: TimeNS = %d, want %d", skew, i, ws.TimeNS, want)
			}
			if prev != 0 && ws.TimeNS < prev {
				t.Fatalf("skew %d: rebased stream lost monotonicity at span %d", skew, i)
			}
			prev = ws.TimeNS
		}
	}

	// Offset 0 and empty input return the input unchanged (no copy needed).
	if got := RebaseSpans(spans, 0); &got[0] != &spans[0] {
		t.Error("offset 0 should return the input slice")
	}
	if got := RebaseSpans(nil, 123); got != nil {
		t.Error("empty input should pass through")
	}
}
