package backend

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// FleetEvent reports fleet churn: a worker joining or leaving. The
// coordinator broadcasts these into running jobs' telemetry (as
// worker.register / worker.deregister instants) and its logs.
type FleetEvent struct {
	// Type is "register" or "deregister".
	Type string
	// ID is the dispatcher-assigned stable worker ID.
	ID int
	// Worker is the worker's display name.
	Worker string
	// Reason explains a deregistration ("withdrawn", or the last error).
	Reason string
}

// Fleet event types.
const (
	FleetRegister   = "register"
	FleetDeregister = "deregister"
)

// DispatcherConfig tunes a Dispatcher. The zero value of every field picks
// a sensible default; Local is required.
type DispatcherConfig struct {
	// Local is the fallback backend: evaluations land here when no workers
	// are registered, the admission queue is full, or every remote attempt
	// failed. Required — it is what guarantees a job never dies with the
	// fleet.
	Local EvalBackend
	// AttemptTimeout bounds one remote evaluation attempt (default 5m;
	// simulator evaluations are seconds-to-minutes, and a hung worker must
	// not hang the search).
	AttemptTimeout time.Duration
	// Retries is the number of additional remote attempts after a failed
	// one, each on the then-least-loaded worker, before falling back local
	// (default 2).
	Retries int
	// BackoffBase is the first retry's backoff delay, doubling per attempt
	// (default 50ms, capped at 2s).
	BackoffBase time.Duration
	// MaxQueue is the admission limit: evaluations waiting for a remote
	// slot beyond this are shed to the local backend instead of queueing
	// (default 64).
	MaxQueue int
	// FailureLimit deregisters a worker after this many consecutive failed
	// evaluations or health probes (default 3). ErrBusy does not count.
	FailureLimit int
	// OnEvent, when non-nil, receives fleet churn events. Called without
	// dispatcher locks held.
	OnEvent func(FleetEvent)
}

// DispatchCounters snapshots the dispatcher's lifetime counters.
type DispatchCounters struct {
	// RemoteEvals and LocalEvals count evaluations by serving side.
	RemoteEvals uint64
	LocalEvals  uint64
	// Retries counts failed remote attempts that were re-dispatched.
	Retries uint64
	// Fallbacks counts evaluations served locally after remote attempts
	// failed; Sheds counts evaluations sent local by admission control
	// without trying the fleet.
	Fallbacks uint64
	Sheds     uint64
	// Registered and Deregistered count fleet churn events.
	Registered   uint64
	Deregistered uint64
}

// WorkerInfo is one registered worker's public state.
type WorkerInfo struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	URL      string `json:"url,omitempty"`
	Capacity int    `json:"capacity"`
	Inflight int    `json:"inflight"`
	Healthy  bool   `json:"healthy"`
	Evals    uint64 `json:"evals"`
	Failures int    `json:"consecutive_failures"`
	// Version is the worker's self-reported build version (heartbeat or
	// health probe) — the fleet's version-skew signal.
	Version string `json:"version,omitempty"`
	// ReportedInflight is the worker's own load snapshot from its last
	// heartbeat; Inflight above is the dispatcher's accounting of work *it*
	// has in flight there, which misses load from other coordinators.
	ReportedInflight int `json:"reported_inflight,omitempty"`
	// LastSeenAgeMS is how long ago the worker last proved liveness
	// (registration, heartbeat, successful probe, or served evaluation).
	LastSeenAgeMS int64 `json:"last_seen_age_ms"`
	// Clock is the worker's estimated clock offset (nil until a stamped
	// round trip has been observed).
	Clock *ClockEstimate `json:"clock,omitempty"`
}

// workerState is the dispatcher's bookkeeping for one registered worker.
type workerState struct {
	id       int
	backend  EvalBackend
	url      string // dedup key for URL-registered workers ("" for direct backends)
	inflight int
	fails    int
	healthy  bool
	evals    uint64
	reported int       // inflight self-reported on the last heartbeat
	lastSeen time.Time // last registration/heartbeat/probe/eval success
}

func (w *workerState) capacity() int {
	if c := w.backend.Capacity(); c > 0 {
		return c
	}
	return 1
}

// Dispatcher shards evaluations across a fleet of registered workers:
// least-loaded healthy worker first, per-attempt timeout, exponential
// backoff between retries, failure-count-based eviction, and admission
// control that sheds overload to the local backend. It implements
// EvalBackend itself, so a search evaluator needs no special casing —
// with an empty fleet it degenerates to the local backend.
//
// Dispatch order is load- and timing-dependent and therefore NOT
// deterministic; determinism lives one level down (every backend returns
// bit-identical profiles), which is why routing can be adaptive without
// perturbing results.
type Dispatcher struct {
	cfg  DispatcherConfig
	mu   sync.Mutex
	cond *sync.Cond

	workers []*workerState
	nextID  int
	waiting int

	remoteEvals  atomic.Uint64
	localEvals   atomic.Uint64
	retries      atomic.Uint64
	fallbacks    atomic.Uint64
	sheds        atomic.Uint64
	registered   atomic.Uint64
	deregistered atomic.Uint64
}

// NewDispatcher builds a dispatcher over the given local fallback.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	if cfg.Local == nil {
		panic("backend: Dispatcher requires a local fallback backend")
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 5 * time.Minute
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.FailureLimit <= 0 {
		cfg.FailureLimit = 3
	}
	d := &Dispatcher{cfg: cfg}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Name implements EvalBackend.
func (d *Dispatcher) Name() string { return "dispatcher" }

// Health implements EvalBackend: a dispatcher can always serve (via the
// local fallback if nothing else).
func (d *Dispatcher) Health(ctx context.Context) error { return nil }

// Capacity implements EvalBackend: the sum of healthy workers' capacities
// (0 with an empty fleet — local evaluation is unbounded).
func (d *Dispatcher) Capacity() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := 0
	for _, w := range d.workers {
		if w.healthy {
			total += w.capacity()
		}
	}
	return total
}

// Register adds a worker backend to the fleet and returns its stable ID.
// Registering a backend whose Name matches an existing worker refreshes
// that worker (marks it healthy, clears its failure count) instead of
// duplicating it — worker re-announcements are heartbeats.
func (d *Dispatcher) Register(b EvalBackend) int {
	return d.register(b, "")
}

// RegisterURL adds (or refreshes) a remote worker by registration message.
// Workers are deduplicated by URL.
func (d *Dispatcher) RegisterURL(reg WorkerRegistration) (int, error) {
	if reg.URL == "" {
		return 0, errors.New("backend: registration without a url")
	}
	if reg.Protocol != 0 && reg.Protocol != ProtocolVersion {
		return 0, errors.New("backend: registration protocol version mismatch")
	}
	rb := NewRemoteBackend(reg.URL, reg.Name)
	if reg.Capacity > 0 {
		rb.SetCapacity(reg.Capacity)
	}
	rb.SetVersion(reg.Version)
	return d.registerWith(rb, rb.URL(), reg.Inflight), nil
}

// register implements Register/RegisterURL; dedupKey "" dedups by name.
func (d *Dispatcher) register(b EvalBackend, dedupKey string) int {
	return d.registerWith(b, dedupKey, 0)
}

func (d *Dispatcher) registerWith(b EvalBackend, dedupKey string, reported int) int {
	d.mu.Lock()
	for _, w := range d.workers {
		same := (dedupKey != "" && w.url == dedupKey) ||
			(dedupKey == "" && w.url == "" && w.backend.Name() == b.Name())
		if same {
			// Heartbeat re-registration: refresh liveness, capacity, load
			// snapshot, and version.
			w.healthy = true
			w.fails = 0
			w.reported = reported
			w.lastSeen = time.Now()
			if rb, ok := w.backend.(*RemoteBackend); ok {
				if c := b.Capacity(); c > 0 {
					rb.SetCapacity(c)
				}
				if nrb, ok := b.(*RemoteBackend); ok {
					rb.SetVersion(nrb.Version())
				}
			}
			id := w.id
			d.cond.Broadcast()
			d.mu.Unlock()
			return id
		}
	}
	w := &workerState{id: d.nextID, backend: b, url: dedupKey, healthy: true,
		reported: reported, lastSeen: time.Now()}
	d.nextID++
	d.workers = append(d.workers, w)
	d.registered.Add(1)
	d.cond.Broadcast()
	d.mu.Unlock()
	d.emit(FleetEvent{Type: FleetRegister, ID: w.id, Worker: b.Name()})
	return w.id
}

// Deregister removes a worker by name or URL. Reason lands in the fleet
// event.
func (d *Dispatcher) Deregister(nameOrURL, reason string) bool {
	d.mu.Lock()
	for i, w := range d.workers {
		if w.backend.Name() == nameOrURL || (w.url != "" && w.url == nameOrURL) {
			d.workers = append(d.workers[:i], d.workers[i+1:]...)
			d.deregistered.Add(1)
			d.cond.Broadcast()
			d.mu.Unlock()
			d.emit(FleetEvent{Type: FleetDeregister, ID: w.id, Worker: w.backend.Name(), Reason: reason})
			return true
		}
	}
	d.mu.Unlock()
	return false
}

// HasWorkers reports whether any worker is registered (healthy or not).
func (d *Dispatcher) HasWorkers() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.workers) > 0
}

// Workers snapshots the fleet, in registration order.
func (d *Dispatcher) Workers() []WorkerInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(d.workers))
	for _, w := range d.workers {
		info := WorkerInfo{
			ID:               w.id,
			Name:             w.backend.Name(),
			URL:              w.url,
			Capacity:         w.capacity(),
			Inflight:         w.inflight,
			Healthy:          w.healthy,
			Evals:            w.evals,
			Failures:         w.fails,
			ReportedInflight: w.reported,
		}
		if !w.lastSeen.IsZero() {
			info.LastSeenAgeMS = now.Sub(w.lastSeen).Milliseconds()
		}
		if rb, ok := w.backend.(*RemoteBackend); ok {
			info.Version = rb.Version()
			if est, ok := rb.Clock(); ok {
				c := est
				info.Clock = &c
			}
		}
		out = append(out, info)
	}
	return out
}

// QueueDepth is the number of evaluations currently waiting for a remote
// slot — the admission-control gauge.
func (d *Dispatcher) QueueDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.waiting
}

// Counters snapshots the dispatch counters.
func (d *Dispatcher) Counters() DispatchCounters {
	return DispatchCounters{
		RemoteEvals:  d.remoteEvals.Load(),
		LocalEvals:   d.localEvals.Load(),
		Retries:      d.retries.Load(),
		Fallbacks:    d.fallbacks.Load(),
		Sheds:        d.sheds.Load(),
		Registered:   d.registered.Load(),
		Deregistered: d.deregistered.Load(),
	}
}

// CheckHealth probes every registered worker, marking it healthy or
// unhealthy and deregistering it once its consecutive-failure count crosses
// the limit. The coordinator runs this on a timer.
func (d *Dispatcher) CheckHealth(ctx context.Context) {
	d.mu.Lock()
	snapshot := append([]*workerState(nil), d.workers...)
	d.mu.Unlock()
	for _, w := range snapshot {
		if ctx.Err() != nil {
			return
		}
		hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		err := w.backend.Health(hctx)
		cancel()
		if err == nil {
			d.mu.Lock()
			w.healthy = true
			w.fails = 0
			w.lastSeen = time.Now()
			d.cond.Broadcast()
			d.mu.Unlock()
			continue
		}
		d.noteFailure(w, err.Error())
	}
}

// noteFailure records one failed evaluation or probe against a worker,
// marking it unhealthy and evicting it at the failure limit.
func (d *Dispatcher) noteFailure(w *workerState, reason string) {
	var ev *FleetEvent
	d.mu.Lock()
	w.fails++
	w.healthy = false
	if w.fails >= d.cfg.FailureLimit {
		for i, cur := range d.workers {
			if cur == w {
				d.workers = append(d.workers[:i], d.workers[i+1:]...)
				d.deregistered.Add(1)
				ev = &FleetEvent{Type: FleetDeregister, ID: w.id, Worker: w.backend.Name(), Reason: reason}
				break
			}
		}
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	if ev != nil {
		d.emit(*ev)
	}
}

func (d *Dispatcher) emit(ev FleetEvent) {
	if d.cfg.OnEvent != nil {
		d.cfg.OnEvent(ev)
	}
}

// Sentinel acquire outcomes that route an evaluation to the local backend.
var (
	errNoRemote  = errors.New("backend: no healthy workers")
	errSaturated = errors.New("backend: dispatch queue is full")
)

// acquire blocks until a healthy worker has a free slot (incrementing its
// in-flight count), the fleet empties, the admission queue fills, or ctx is
// done.
func (d *Dispatcher) acquire(ctx context.Context) (*workerState, error) {
	// Waiting happens inside cond.Wait, which a context cannot interrupt;
	// an AfterFunc that takes the lock before broadcasting guarantees the
	// wakeup cannot slip between a waiter's ctx check and its Wait.
	stop := context.AfterFunc(ctx, func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	defer stop()
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var pick *workerState
		healthy := false
		for _, w := range d.workers {
			if !w.healthy {
				continue
			}
			healthy = true
			if w.inflight >= w.capacity() {
				continue
			}
			if pick == nil || w.inflight < pick.inflight {
				pick = w
			}
		}
		if pick != nil {
			pick.inflight++
			return pick, nil
		}
		if !healthy {
			return nil, errNoRemote
		}
		if d.waiting >= d.cfg.MaxQueue {
			return nil, errSaturated
		}
		d.waiting++
		d.cond.Wait()
		d.waiting--
	}
}

// release returns a worker's slot and records the attempt's outcome.
func (d *Dispatcher) release(w *workerState, ok bool) {
	d.mu.Lock()
	w.inflight--
	if ok {
		w.fails = 0
		w.healthy = true
		w.evals++
		w.lastSeen = time.Now()
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Evaluate implements EvalBackend: dispatch to the least-loaded healthy
// worker, retry with backoff on another worker after a failure, and fall
// back to the local backend when the fleet cannot serve. The returned
// result carries routing metadata (WorkerID/Retries/Remote/Fallback) for
// telemetry.
func (d *Dispatcher) Evaluate(ctx context.Context, req EvalRequest) (EvalResult, error) {
	req.Version = ProtocolVersion
	failed := 0
	shed := false
	for attempt := 0; attempt <= d.cfg.Retries; attempt++ {
		w, err := d.acquire(ctx)
		if err == errNoRemote {
			break
		}
		if err == errSaturated {
			shed = true
			break
		}
		if err != nil {
			return EvalResult{}, err
		}
		if attempt > 0 {
			d.retries.Add(1)
		}
		actx, cancel := context.WithTimeout(ctx, d.cfg.AttemptTimeout)
		res, err := w.backend.Evaluate(actx, req)
		cancel()
		d.release(w, err == nil)
		if err == nil {
			res.WorkerID = w.id
			res.Retries = failed
			res.Remote = true
			if res.Worker == "" {
				res.Worker = w.backend.Name()
			}
			d.remoteEvals.Add(1)
			return res, nil
		}
		if ctx.Err() != nil {
			return EvalResult{}, ctx.Err()
		}
		failed++
		if !errors.Is(err, ErrBusy) {
			// A saturated worker is healthy; anything else counts toward
			// eviction.
			d.noteFailure(w, err.Error())
		}
		if attempt < d.cfg.Retries {
			if err := sleepCtx(ctx, d.backoff(attempt)); err != nil {
				return EvalResult{}, err
			}
		}
	}
	if shed {
		d.sheds.Add(1)
	}
	res, err := d.cfg.Local.Evaluate(ctx, req)
	if err != nil {
		return EvalResult{}, err
	}
	res.WorkerID = -1
	res.Retries = failed
	res.Remote = false
	res.Fallback = failed > 0
	if res.Worker == "" {
		res.Worker = d.cfg.Local.Name()
	}
	d.localEvals.Add(1)
	if failed > 0 {
		d.fallbacks.Add(1)
	}
	return res, nil
}

// backoff returns the delay before retry attempt+1: exponential from
// BackoffBase, capped at 2s.
func (d *Dispatcher) backoff(attempt int) time.Duration {
	delay := d.cfg.BackoffBase << uint(attempt)
	if max := 2 * time.Second; delay > max {
		delay = max
	}
	return delay
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var _ EvalBackend = (*Dispatcher)(nil)
