package backend

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"datamime/internal/apps/kvstore"
	"datamime/internal/datagen"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/stats"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

func newTestWorker(t *testing.T, cfg WorkerConfig) (*Worker, *RemoteBackend, *httptest.Server) {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "test-worker"
	}
	if cfg.ProfileWorkers == 0 {
		cfg.ProfileWorkers = 1
	}
	if cfg.Generators == nil {
		cfg.Generators = []datagen.Generator{testGenerator()}
	}
	w := NewWorker(cfg)
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	return w, NewRemoteBackend(ts.URL, cfg.Name), ts
}

// TestWorkerEvaluateOverWire: a real HTTP round trip returns the profile
// the local profiler measures, byte for byte, and a repeated key is served
// from the worker-local cache tier.
func TestWorkerEvaluateOverWire(t *testing.T) {
	_, rb, _ := newTestWorker(t, WorkerConfig{})
	pr := testProfiler()
	req := testRequest(pr)
	req.Key = "eval-key"

	res, err := rb.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Worker != "test-worker" || res.CacheTier != "" {
		t.Fatalf("first eval = worker %q tier %q", res.Worker, res.CacheTier)
	}
	direct, err := pr.Profile(testGenerator().Benchmark(req.Params), req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(direct)
	gotJSON, _ := json.Marshal(res.Profile)
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("wire profile differs from direct measurement")
	}

	// Same key again: the worker-local tier serves without simulating.
	res2, err := rb.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheTier != "worker" {
		t.Fatalf("repeat eval tier = %q, want \"worker\"", res2.CacheTier)
	}
	got2, _ := json.Marshal(res2.Profile)
	if string(got2) != string(wantJSON) {
		t.Fatal("cached profile differs from measured profile")
	}
}

// TestWorkerSharedCacheTier: a worker with a coordinator serves a key
// pre-seeded in the shared cache without simulating, and publishes fresh
// measurements back.
func TestWorkerSharedCacheTier(t *testing.T) {
	cs, coord := newCacheServer()
	defer coord.Close()
	seeded := testProfilerProfile(t)
	cs.stored["seeded-key"] = seeded

	w, rb, _ := newTestWorker(t, WorkerConfig{Coordinator: coord.URL})
	pr := testProfiler()
	req := testRequest(pr)
	req.Key = "seeded-key"
	res, err := rb.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheTier != TierShared {
		t.Fatalf("tier = %q, want %q", res.CacheTier, TierShared)
	}
	got, _ := json.Marshal(res.Profile)
	want, _ := json.Marshal(seeded)
	if string(got) != string(want) {
		t.Fatal("shared-tier profile was not served verbatim")
	}
	st := w.CacheStats()
	if st.RemoteHits != 1 {
		t.Fatalf("cache stats = %+v, want one shared hit", st)
	}

	// A fresh key simulates and publishes to the shared tier.
	req.Key = "fresh-key"
	if _, err := rb.Evaluate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	cs.mu.Lock()
	_, published := cs.stored["fresh-key"]
	cs.mu.Unlock()
	if !published {
		t.Fatal("fresh measurement not published to the shared tier")
	}
}

// testProfilerProfile measures one profile for seeding fake caches.
func testProfilerProfile(t *testing.T) *profile.Profile {
	t.Helper()
	p, err := testProfiler().Profile(testGenerator().Benchmark([]float64{50_000, 0.9, 128}), 7)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// blockingGenerator returns a generator whose Benchmark construction blocks
// until release closes — it runs inside Worker evaluation while holding the
// admission slot, which is exactly what the shed test needs.
func blockingGenerator(started chan<- struct{}, release <-chan struct{}) datagen.Generator {
	space := opt.MustSpace(opt.Param{Name: "qps", Lo: 1_000, Hi: 100_000})
	return datagen.Generator{
		Name:  "kv-blocking",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			started <- struct{}{}
			<-release
			cfg := kvstore.Config{
				NumKeys:   1_000,
				KeySize:   stats.Normal{Mu: 16, Sigma: 2, Min: 4},
				ValueSize: stats.Normal{Mu: 64, Sigma: 8, Min: 1},
				GetRatio:  0.9,
			}
			return workload.Benchmark{
				Name: "kv-blocking",
				QPS:  x[0],
				NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
					return kvstore.New(cfg, layout, seed)
				},
			}
		},
	}
}

// TestWorkerShedsAtCapacity: with Capacity 1 and MaxBacklog 1, the third
// concurrent evaluation is shed with 503, which the RemoteBackend reports
// as ErrBusy so the dispatcher re-routes without counting a failure.
func TestWorkerShedsAtCapacity(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	w, rb, _ := newTestWorker(t, WorkerConfig{
		Capacity:   1,
		MaxBacklog: 1,
		Generators: []datagen.Generator{blockingGenerator(started, release)},
	})

	req := EvalRequest{
		Version:   ProtocolVersion,
		Kind:      KindCandidate,
		Generator: "kv-blocking",
		Params:    []float64{10_000},
		Seed:      1,
		Profiler:  SpecOf(testProfiler()),
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rb.Evaluate(context.Background(), req); err != nil {
				t.Error(err)
			}
		}()
	}
	<-started // the first evaluation is running (and holding the slot)
	waitUntil(t, "one queued request", func() bool { return w.Health().Inflight == 2 })

	_, err := rb.Evaluate(context.Background(), req)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}

	close(release)
	wg.Wait()
	if got := w.Health().Evals; got != 2 {
		t.Fatalf("evals = %d, want 2", got)
	}
}

// TestWorkerHealthHandshake: /v1/healthz reports identity and protocol, and
// RemoteBackend.Health refreshes the advertised capacity from it.
func TestWorkerHealthHandshake(t *testing.T) {
	_, rb, _ := newTestWorker(t, WorkerConfig{Name: "hs", Capacity: 3})
	if err := rb.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rb.Capacity() != 3 {
		t.Fatalf("capacity after handshake = %d, want 3", rb.Capacity())
	}
}

// TestRemoteBackendRejectsProtocolMismatch: a worker speaking another
// protocol version fails the handshake instead of risking silently
// reinterpreted requests.
func TestRemoteBackendRejectsProtocolMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		writeWire(rw, http.StatusOK, WorkerHealth{Protocol: ProtocolVersion + 1, Name: "future"})
	}))
	defer ts.Close()
	rb := NewRemoteBackend(ts.URL, "future")
	err := rb.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("err = %v, want protocol mismatch", err)
	}
}

// TestWorkerRejectsBadRequests: version mismatches and malformed bodies get
// HTTP 400 with a wire error, never an evaluation.
func TestWorkerRejectsBadRequests(t *testing.T) {
	_, _, ts := newTestWorker(t, WorkerConfig{})
	bad := testRequest(testProfiler())
	bad.Version = ProtocolVersion + 1
	body, _ := json.Marshal(&bad)
	resp, err := http.Post(ts.URL+PathEvaluate, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var we wireError
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Error == "" {
		t.Fatalf("wire error = %+v (%v)", we, err)
	}

	resp2, err := http.Post(ts.URL+PathEvaluate, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", resp2.StatusCode)
	}
}

// TestWorkerMetrics: /metrics exposes the worker metric families with cache
// accounting that matches the served traffic.
func TestWorkerMetrics(t *testing.T) {
	_, rb, ts := newTestWorker(t, WorkerConfig{})
	req := testRequest(testProfiler())
	req.Key = "metrics-key"
	if _, err := rb.Evaluate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Evaluate(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"datamime_worker_capacity 1",
		"datamime_worker_evaluations_total 2",
		"datamime_worker_cache_local_hits_total 1",
		"datamime_worker_cache_misses_total 1",
		"datamime_worker_busy_rejects_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
