package backend

import (
	"context"
	"time"

	"datamime/internal/core"
	"datamime/internal/profile"
	"datamime/internal/telemetry"
)

// SearchEvaluator adapts an EvalBackend (typically a Dispatcher) to
// core.Evaluator: it wraps each candidate in a versioned EvalRequest keyed
// by the same core.EvalKey the search's cache uses, so workers can
// deduplicate against the shared tier. The search's own cache lookup,
// seeds, and scoring stay in core — the evaluator only replaces where the
// simulation runs, which is why a dispatched search stays bit-identical to
// a local one.
type SearchEvaluator struct {
	// Backend serves the evaluations.
	Backend EvalBackend
	// Generator is the searched generator's registered name.
	Generator string
	// Profiler is the search's measurement spec (also the EvalKey
	// ingredient).
	Profiler *profile.Profiler
	// Telemetry, when non-nil, records one eval.remote span per evaluation
	// (with worker/retry attributes — the remote lanes of the trace
	// export) plus dispatch.retry and dispatch.fallback instants. Like all
	// telemetry it cannot affect results.
	Telemetry *telemetry.Recorder
	// OnResult, when non-nil, observes every evaluation's outcome (the
	// coordinator feeds its dispatch metrics from here).
	OnResult func(res EvalResult, err error, d time.Duration)

	spec ProfilerSpec
}

// NewSearchEvaluator builds the adapter for one search.
func NewSearchEvaluator(b EvalBackend, generator string, pr *profile.Profiler) *SearchEvaluator {
	return &SearchEvaluator{
		Backend:   b,
		Generator: generator,
		Profiler:  pr,
		spec:      SpecOf(pr),
	}
}

// Evaluate implements core.Evaluator.
func (e *SearchEvaluator) Evaluate(ctx context.Context, x []float64, seed uint64) (*profile.Profile, error) {
	req := EvalRequest{
		Version:   ProtocolVersion,
		Kind:      KindCandidate,
		Generator: e.Generator,
		Params:    x,
		Seed:      seed,
		Profiler:  e.spec,
		Key:       core.EvalKey(e.Generator, e.Profiler, x, seed),
	}
	start := time.Now()
	res, err := e.Backend.Evaluate(ctx, req)
	d := time.Since(start)
	if e.OnResult != nil {
		e.OnResult(res, err, d)
	}
	if rec := e.Telemetry; rec.Enabled() && err == nil {
		attrs := map[string]float64{
			telemetry.AttrRemoteWorker: float64(res.WorkerID),
			telemetry.AttrRetries:      float64(res.Retries),
		}
		if res.Remote {
			attrs[telemetry.AttrRemote] = 1
		}
		rec.RecordSpan(telemetry.PhaseRemoteEval, 0, d, attrs)
		if res.Retries > 0 {
			rec.RecordSpan(telemetry.PhaseDispatchRetry, 0, 0, map[string]float64{
				telemetry.AttrRemoteWorker: float64(res.WorkerID),
				telemetry.AttrRetries:      float64(res.Retries),
			})
		}
		if res.Fallback {
			rec.RecordSpan(telemetry.PhaseDispatchFallback, 0, 0, map[string]float64{
				telemetry.AttrRetries: float64(res.Retries),
			})
		}
	}
	if err != nil {
		return nil, err
	}
	return res.Profile, nil
}

var _ core.Evaluator = (*SearchEvaluator)(nil)
