package backend

import (
	"context"
	"time"

	"datamime/internal/core"
	"datamime/internal/profile"
	"datamime/internal/telemetry"
)

// SearchEvaluator adapts an EvalBackend (typically a Dispatcher) to
// core.Evaluator: it wraps each candidate in a versioned EvalRequest keyed
// by the same core.EvalKey the search's cache uses, so workers can
// deduplicate against the shared tier. The search's own cache lookup,
// seeds, and scoring stay in core — the evaluator only replaces where the
// simulation runs, which is why a dispatched search stays bit-identical to
// a local one.
type SearchEvaluator struct {
	// Backend serves the evaluations.
	Backend EvalBackend
	// Generator is the searched generator's registered name.
	Generator string
	// Profiler is the search's measurement spec (also the EvalKey
	// ingredient).
	Profiler *profile.Profiler
	// Telemetry, when non-nil, records one eval.remote span per evaluation
	// (with worker/retry attributes — the remote lanes of the trace
	// export) plus dispatch.retry and dispatch.fallback instants. Like all
	// telemetry it cannot affect results.
	Telemetry *telemetry.Recorder
	// OnResult, when non-nil, observes every evaluation's outcome (the
	// coordinator feeds its dispatch metrics from here).
	OnResult func(res EvalResult, err error, d time.Duration)

	spec ProfilerSpec
}

// NewSearchEvaluator builds the adapter for one search.
func NewSearchEvaluator(b EvalBackend, generator string, pr *profile.Profiler) *SearchEvaluator {
	return &SearchEvaluator{
		Backend:   b,
		Generator: generator,
		Profiler:  pr,
		spec:      SpecOf(pr),
	}
}

// Evaluate implements core.Evaluator.
func (e *SearchEvaluator) Evaluate(ctx context.Context, x []float64, seed uint64) (*profile.Profile, error) {
	req := EvalRequest{
		Version:   ProtocolVersion,
		Kind:      KindCandidate,
		Generator: e.Generator,
		Params:    x,
		Seed:      seed,
		Profiler:  e.spec,
		Key:       core.EvalKey(e.Generator, e.Profiler, x, seed),
	}
	if e.Telemetry.Enabled() {
		// Trace context: the content address doubles as the trace ID — it is
		// deterministic, unique per evaluation, and already on the request.
		// The serving side captures and ships its spans only when set.
		req.TraceID = req.Key
	}
	start := time.Now()
	res, err := e.Backend.Evaluate(ctx, req)
	d := time.Since(start)
	if e.OnResult != nil {
		e.OnResult(res, err, d)
	}
	if rec := e.Telemetry; rec.Enabled() && err == nil {
		attrs := map[string]float64{
			telemetry.AttrRemoteWorker: float64(res.WorkerID),
			telemetry.AttrRetries:      float64(res.Retries),
		}
		if res.Remote {
			attrs[telemetry.AttrRemote] = 1
		}
		if res.DurationNS > 0 {
			// Worker-side evaluation time: round trip minus this is the
			// dispatch overhead (serialization, network, queueing).
			attrs[telemetry.AttrWorkerNS] = float64(res.DurationNS)
		}
		if res.ClockOffsetOK {
			attrs[telemetry.AttrClockOffsetNS] = float64(res.ClockOffsetNS)
			attrs[telemetry.AttrClockErrNS] = float64(res.ClockErrNS)
		}
		rec.RecordSpan(telemetry.PhaseRemoteEval, 0, d, attrs)
		// Replay the shipped worker spans onto the coordinator timeline:
		// rebase their wall-clock stamps by the estimated offset and tag
		// them with the fleet worker ID so the trace exporter and timeline
		// report can attribute them. Locally served evaluations ship spans
		// already in the coordinator's clock (offset 0).
		if len(res.Spans) > 0 {
			var offset int64
			if res.ClockOffsetOK {
				offset = res.ClockOffsetNS
			}
			for _, ws := range RebaseSpans(res.Spans, offset) {
				sa := make(map[string]float64, len(ws.Attrs)+1)
				for k, v := range ws.Attrs {
					sa[k] = v
				}
				sa[telemetry.AttrFleetWorker] = float64(res.WorkerID)
				rec.Emit(telemetry.Event{
					Type:   telemetry.TypeSpan,
					Iter:   ws.Iter,
					Phase:  ws.Phase,
					DurNS:  ws.DurNS,
					TimeNS: ws.TimeNS,
					Attrs:  sa,
				})
			}
		}
		if res.Retries > 0 {
			rec.RecordSpan(telemetry.PhaseDispatchRetry, 0, 0, map[string]float64{
				telemetry.AttrRemoteWorker: float64(res.WorkerID),
				telemetry.AttrRetries:      float64(res.Retries),
			})
		}
		if res.Fallback {
			rec.RecordSpan(telemetry.PhaseDispatchFallback, 0, 0, map[string]float64{
				telemetry.AttrRetries: float64(res.Retries),
			})
		}
	}
	if err != nil {
		return nil, err
	}
	return res.Profile, nil
}

var _ core.Evaluator = (*SearchEvaluator)(nil)
