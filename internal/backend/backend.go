// Package backend is Datamime's distributed evaluation plane: an
// EvalBackend abstraction over "measure one candidate", with a LocalBackend
// that wraps the in-process profiler and a RemoteBackend that speaks a
// versioned JSON-over-HTTP protocol to cmd/datamime-worker processes. A
// Dispatcher shards evaluations across a registered worker fleet with
// retry, timeout, and backoff — always falling back to local evaluation, so
// a job never dies with its fleet — and a TieredCache layers a worker-local
// LRU over a coordinator-served shared cache endpoint so a fleet
// deduplicates simulation work globally.
//
// The load-bearing design constraint is determinism: a profile is a pure
// function of (generator, params, seed, machine, profiler budget) — exactly
// the ingredients of core.EvalKey — and the simulator is bit-deterministic,
// so a conforming backend returns byte-for-byte the profile the local
// profiler would have measured. Go's encoding/json round-trips float64
// values exactly (shortest-representation encoding), so shipping profiles
// over the wire preserves that identity, and a search run against a fleet
// produces bit-identical artifacts to a local run of the same seed. Which
// backend served an evaluation is visible only in telemetry, never in
// results.
package backend

import (
	"context"
	"fmt"

	"datamime/internal/profile"
	"datamime/internal/sim"
)

// ProtocolVersion is the wire-protocol version spoken between coordinators
// and workers. Both sides reject mismatched versions outright: a silently
// reinterpreted field could break bit-identity, the one failure mode this
// subsystem must never have.
//
// Version history:
//
//	1 — PR 6's evaluation plane: EvalRequest/EvalResult, /v1/healthz,
//	    /v1/cache, /v1/workers.
//	2 — trace-context propagation: EvalRequest.TraceID, the EvalResponse
//	    envelope with shipped spans and worker wall-clock, WorkerHealth
//	    time/version fields, WorkerRegistration version/inflight fields.
const ProtocolVersion = 2

// Evaluation kinds.
const (
	// KindCandidate evaluates one generator parameter vector (the search
	// hot path).
	KindCandidate = "candidate"
	// KindTarget profiles a registered workload's hidden target (done once
	// per workload-sourced job).
	KindTarget = "target"
)

// ProfilerSpec is the serializable description of a profile.Profiler: the
// machine by name plus every budget knob that enters core.EvalKey. Workers,
// Budget, and Telemetry are deliberately absent — they change how fast a
// profile is measured, never what is measured — so the receiving side is
// free to pick its own parallelism. Zero-valued fields are meaningful
// (e.g. WarmupWindows 0) and are always marshaled.
type ProfilerSpec struct {
	Machine           string  `json:"machine"`
	WindowCycles      float64 `json:"window_cycles"`
	Windows           int     `json:"windows"`
	WarmupWindows     int     `json:"warmup_windows"`
	CurveWindows      int     `json:"curve_windows"`
	CurvePoints       int     `json:"curve_points"`
	MaxRequestsPerRun int     `json:"max_requests_per_run"`
	SkipCurves        bool    `json:"skip_curves"`
}

// SpecOf extracts the wire spec from a profiler.
func SpecOf(pr *profile.Profiler) ProfilerSpec {
	return ProfilerSpec{
		Machine:           pr.Machine.Name,
		WindowCycles:      pr.WindowCycles,
		Windows:           pr.Windows,
		WarmupWindows:     pr.WarmupWindows,
		CurveWindows:      pr.CurveWindows,
		CurvePoints:       pr.CurvePoints,
		MaxRequestsPerRun: pr.MaxRequestsPerRun,
		SkipCurves:        pr.SkipCurves,
	}
}

// Profiler reconstructs the profiler a spec describes. Machines resolve by
// name to their canonical Table II configurations, so a reconstructed
// profiler produces the same core.EvalKey — and the same measurements — as
// the coordinator's original.
func (s ProfilerSpec) Profiler() (*profile.Profiler, error) {
	machine, err := sim.MachineByName(s.Machine)
	if err != nil {
		return nil, err
	}
	return &profile.Profiler{
		Machine:           machine,
		WindowCycles:      s.WindowCycles,
		Windows:           s.Windows,
		WarmupWindows:     s.WarmupWindows,
		CurveWindows:      s.CurveWindows,
		CurvePoints:       s.CurvePoints,
		MaxRequestsPerRun: s.MaxRequestsPerRun,
		SkipCurves:        s.SkipCurves,
	}, nil
}

// EvalRequest is one evaluation, as dispatched to a backend and as POSTed
// to a worker's /v1/evaluate endpoint.
type EvalRequest struct {
	// Version is the protocol version (ProtocolVersion).
	Version int `json:"version"`
	// Kind selects what to measure: KindCandidate or KindTarget.
	Kind string `json:"kind"`
	// Generator names the registered dataset generator (candidate evals).
	Generator string `json:"generator,omitempty"`
	// Workload names the registered evaluation workload (target evals).
	Workload string `json:"workload,omitempty"`
	// Params is the denormalized candidate parameter vector.
	Params []float64 `json:"params,omitempty"`
	// Seed is the deterministic profiling seed (core.IterationSeed).
	Seed uint64 `json:"seed"`
	// Profiler is the measurement spec.
	Profiler ProfilerSpec `json:"profiler"`
	// Key, when set, is the evaluation's content address (core.EvalKey):
	// workers consult their two-tier cache under it before simulating and
	// publish fresh measurements back to the shared tier.
	Key string `json:"key,omitempty"`
	// TraceID, when set, asks the serving side to capture its telemetry
	// spans (profile.sim, budget.wait, cache probes) for this evaluation and
	// ship them back in the response envelope. It is pure trace context:
	// deliberately excluded from core.EvalKey and ignored by the cache, it
	// can never change what is measured.
	TraceID string `json:"trace_id,omitempty"`
}

// Validate reports requests no backend can serve.
func (r *EvalRequest) Validate() error {
	if r.Version != ProtocolVersion {
		return fmt.Errorf("backend: protocol version %d, want %d", r.Version, ProtocolVersion)
	}
	switch r.Kind {
	case KindCandidate:
		if r.Generator == "" {
			return fmt.Errorf("backend: candidate request without a generator")
		}
	case KindTarget:
		if r.Workload == "" {
			return fmt.Errorf("backend: target request without a workload")
		}
	default:
		return fmt.Errorf("backend: unknown request kind %q", r.Kind)
	}
	if r.Profiler.Machine == "" {
		return fmt.Errorf("backend: request without a machine")
	}
	return nil
}

// EvalResult is one evaluation's outcome. Profile is the only field that
// feeds back into the search; everything else is telemetry.
type EvalResult struct {
	// Profile is the measured (bit-deterministic) profile.
	Profile *profile.Profile `json:"profile"`
	// Worker is the self-reported name of the backend that measured (or
	// recalled) the profile.
	Worker string `json:"worker,omitempty"`
	// CacheTier, when non-empty, names the cache tier that served the
	// profile without simulating ("worker" or "shared").
	CacheTier string `json:"cache_tier,omitempty"`
	// DurationNS is the serving side's measured evaluation time.
	DurationNS int64 `json:"duration_ns,omitempty"`

	// The dispatcher annotates results with routing metadata; these fields
	// never cross the wire.

	// WorkerID is the dispatcher-assigned fleet ID of the serving worker,
	// or -1 when the local fallback served the evaluation.
	WorkerID int `json:"-"`
	// Retries counts failed dispatch attempts before this result.
	Retries int `json:"-"`
	// Remote reports whether a fleet worker served the evaluation.
	Remote bool `json:"-"`
	// Fallback reports that remote attempts failed and the local backend
	// served the evaluation instead.
	Fallback bool `json:"-"`
	// Spans holds the serving side's captured telemetry spans when the
	// request carried a TraceID. On remote evaluations they arrive via the
	// EvalResponse envelope — never inside EvalResult's own wire form — and
	// their timestamps are in the *worker's* clock until rebased with
	// RebaseSpans(Spans, ClockOffsetNS).
	Spans []WireSpan `json:"-"`
	// SpansTruncated counts spans the serving side dropped at the
	// MaxWireSpans cap — nonzero means Spans is an incomplete prefix.
	SpansTruncated int `json:"-"`
	// ClockOffsetNS and ClockErrNS are the serving worker's estimated clock
	// offset (worker minus coordinator, midpoint method) and its half-RTT
	// uncertainty; ClockOffsetOK reports whether an estimate existed. All
	// zero for locally served evaluations, whose spans need no rebasing.
	ClockOffsetNS int64 `json:"-"`
	ClockErrNS    int64 `json:"-"`
	ClockOffsetOK bool  `json:"-"`
}

// WireSpan is one captured telemetry span as shipped in an EvalResponse
// envelope: just enough to replay the remote execution on the coordinator's
// unified timeline. TimeNS is the span's *end* in the worker's wall clock
// (the telemetry convention); DurNS is monotonic-clock duration and needs no
// alignment.
type WireSpan struct {
	Phase  string             `json:"phase"`
	Iter   int                `json:"iter,omitempty"`
	DurNS  int64              `json:"dur_ns"`
	TimeNS int64              `json:"time_ns"`
	Attrs  map[string]float64 `json:"attrs,omitempty"`
}

// MaxWireSpans bounds how many spans one evaluation ships back; beyond it
// the serving side keeps the earliest spans and drops the rest (the count of
// sim runs per evaluation is budget-bounded, so the cap is generous).
const MaxWireSpans = 4096

// EvalResponse is the /v1/evaluate 200 body: the deterministic EvalResult
// plus observability sidecars that must never enter search state. Keeping
// them outside EvalResult's marshaled form — rather than as more json:"-"
// fields — makes the separation structural: EvalResult's wire shape simply
// has no slot for non-deterministic data.
type EvalResponse struct {
	EvalResult
	// Spans is the worker's captured telemetry for this evaluation (present
	// only when the request carried a TraceID), stamped in the worker's
	// clock.
	Spans []WireSpan `json:"spans,omitempty"`
	// TimeNS is the worker's wall clock (UnixNano) when the response was
	// built — a free clock-offset sample for every evaluation round trip.
	TimeNS int64 `json:"time_ns,omitempty"`
	// SpansTruncated counts spans dropped at the MaxWireSpans cap, so the
	// coordinator knows its timeline for this evaluation is incomplete
	// instead of silently seeing fewer spans.
	SpansTruncated int `json:"spans_truncated,omitempty"`
}

// EvalBackend measures candidates. Implementations must uphold the
// determinism contract: for a given request, return exactly the profile the
// in-process profiler would measure.
type EvalBackend interface {
	// Name identifies the backend in telemetry and logs.
	Name() string
	// Evaluate measures one request. The context carries cancellation and
	// per-attempt timeouts.
	Evaluate(ctx context.Context, req EvalRequest) (EvalResult, error)
	// Health probes liveness (and, for remote backends, refreshes the
	// advertised capacity); a nil error means the backend can serve.
	Health(ctx context.Context) error
	// Capacity is the backend's advertised maximum concurrent evaluations;
	// 0 means unknown or unbounded.
	Capacity() int
}
