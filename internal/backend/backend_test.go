package backend

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"datamime/internal/apps/kvstore"
	"datamime/internal/core"
	"datamime/internal/datagen"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/sim"
	"datamime/internal/stats"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

// testGenerator is a fast memcached-style generator for backend tests.
func testGenerator() datagen.Generator {
	space := opt.MustSpace(
		opt.Param{Name: "qps", Lo: 10_000, Hi: 200_000, Log: true},
		opt.Param{Name: "get_ratio", Lo: 0, Hi: 1},
		opt.Param{Name: "val_mu", Lo: 16, Hi: 3_000, Log: true, Integer: true},
	)
	return datagen.Generator{
		Name:  "kv-backend-test",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			cfg := kvstore.Config{
				NumKeys:   4_000,
				KeySize:   stats.Normal{Mu: 24, Sigma: 6, Min: 4},
				ValueSize: stats.Normal{Mu: x[2], Sigma: x[2] / 8, Min: 1},
				GetRatio:  x[1],
			}
			return workload.Benchmark{
				Name: "kv-backend-test",
				QPS:  x[0],
				NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
					return kvstore.New(cfg, layout, seed)
				},
			}
		},
	}
}

// testProfiler is a reduced-budget profiler keeping these tests fast.
func testProfiler() *profile.Profiler {
	p := profile.New(sim.Broadwell())
	p.WindowCycles = 60_000
	p.Windows = 3
	p.WarmupWindows = 1
	p.SkipCurves = true
	return p
}

func testRequest(pr *profile.Profiler) EvalRequest {
	return EvalRequest{
		Version:   ProtocolVersion,
		Kind:      KindCandidate,
		Generator: "kv-backend-test",
		Params:    []float64{50_000, 0.9, 128},
		Seed:      7,
		Profiler:  SpecOf(pr),
	}
}

// TestLocalBackendBitIdentical pins the determinism contract at its root:
// the LocalBackend returns byte-for-byte the profile a direct profiler call
// measures, and JSON round-tripping (the wire transport) preserves that
// identity.
func TestLocalBackendBitIdentical(t *testing.T) {
	gen := testGenerator()
	pr := testProfiler()
	direct, err := pr.Profile(gen.Benchmark([]float64{50_000, 0.9, 128}), 7)
	if err != nil {
		t.Fatal(err)
	}

	lb := NewLocalBackend(gen)
	res, err := lb.Evaluate(context.Background(), testRequest(pr))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(direct)
	gotJSON, _ := json.Marshal(res.Profile)
	if string(wantJSON) != string(gotJSON) {
		t.Fatal("LocalBackend profile differs from direct profiler measurement")
	}

	// Wire round trip: encode/decode like RemoteBackend does.
	var decoded profile.Profile
	if err := json.Unmarshal(gotJSON, &decoded); err != nil {
		t.Fatal(err)
	}
	reJSON, _ := json.Marshal(&decoded)
	if string(reJSON) != string(wantJSON) {
		t.Fatal("JSON round trip perturbed the profile")
	}
}

// TestRequestValidation covers the requests no backend may serve.
func TestRequestValidation(t *testing.T) {
	pr := testProfiler()
	good := testRequest(pr)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*EvalRequest)
	}{
		{"version mismatch", func(r *EvalRequest) { r.Version = 99 }},
		{"unknown kind", func(r *EvalRequest) { r.Kind = "mystery" }},
		{"candidate without generator", func(r *EvalRequest) { r.Generator = "" }},
		{"no machine", func(r *EvalRequest) { r.Profiler.Machine = "" }},
		{"target without workload", func(r *EvalRequest) { r.Kind = KindTarget; r.Workload = "" }},
	}
	for _, tc := range cases {
		r := testRequest(pr)
		tc.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestProtocolGoldenRequest pins the v2 request wire format. Changing this
// encoding requires a ProtocolVersion bump: a silently reinterpreted field
// could break bit-identity between coordinator and worker.
func TestProtocolGoldenRequest(t *testing.T) {
	req := EvalRequest{
		Version:   2,
		Kind:      KindCandidate,
		Generator: "g",
		Params:    []float64{0.5, 3},
		Seed:      42,
		Profiler: ProfilerSpec{
			Machine:      "broadwell",
			WindowCycles: 60000,
			Windows:      3,
			SkipCurves:   true,
		},
		Key:     "k",
		TraceID: "t1",
	}
	got, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":2,"kind":"candidate","generator":"g","params":[0.5,3],"seed":42,` +
		`"profiler":{"machine":"broadwell","window_cycles":60000,"windows":3,"warmup_windows":0,` +
		`"curve_windows":0,"curve_points":0,"max_requests_per_run":0,"skip_curves":true},"key":"k",` +
		`"trace_id":"t1"}`
	if string(got) != want {
		t.Fatalf("request encoding drifted:\n got %s\nwant %s", got, want)
	}
}

// TestProtocolGoldenHealth pins the v2 handshake wire format.
func TestProtocolGoldenHealth(t *testing.T) {
	h := WorkerHealth{Protocol: 2, Name: "w1", Capacity: 4, Inflight: 2, Evals: 17,
		Version: "abc123", TimeNS: 99}
	got, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"protocol":2,"name":"w1","capacity":4,"inflight":2,"evals_total":17,` +
		`"version":"abc123","time_ns":99}`
	if string(got) != want {
		t.Fatalf("health encoding drifted:\n got %s\nwant %s", got, want)
	}
}

// TestProtocolGoldenResponse pins the v2 /v1/evaluate envelope: the
// deterministic EvalResult fields plus the spans/time_ns sidecars — and,
// crucially, that EvalResult's routing, span, and clock fields (json:"-")
// never leak into the wire form.
func TestProtocolGoldenResponse(t *testing.T) {
	resp := EvalResponse{
		EvalResult: EvalResult{
			Profile:    &profile.Profile{Benchmark: "b"},
			Worker:     "w1",
			CacheTier:  TierShared,
			DurationNS: 5,
			// Coordinator-side-only fields: must not appear in the JSON.
			WorkerID: 7, Retries: 1, Remote: true, Fallback: true,
			Spans:         []WireSpan{{Phase: "leaked-span"}},
			ClockOffsetNS: 123, ClockErrNS: 45, ClockOffsetOK: true,
		},
		Spans: []WireSpan{{Phase: "profile.sim", DurNS: 10, TimeNS: 20,
			Attrs: map[string]float64{"worker": 0}}},
		TimeNS: 30,
	}
	got, err := json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	s := string(got)
	for _, leak := range []string{"leaked-span", "worker_id", "retries", "fallback", "clock_offset"} {
		if strings.Contains(s, leak) {
			t.Fatalf("envelope leaked %q: %s", leak, s)
		}
	}
	profJSON, err := json.Marshal(resp.Profile)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"profile":` + string(profJSON) + `,"worker":"w1","cache_tier":"shared",` +
		`"duration_ns":5,"spans":[{"phase":"profile.sim","dur_ns":10,"time_ns":20,` +
		`"attrs":{"worker":0}}],"time_ns":30}`
	if s != want {
		t.Fatalf("envelope encoding drifted:\n got %s\nwant %s", s, want)
	}
}

// TestLRUEvictionAccounting covers the shared cache's counters.
func TestLRUEvictionAccounting(t *testing.T) {
	c := NewLRU(2)
	p := &profile.Profile{Benchmark: "x"}
	c.Put("a", p)
	c.Put("b", p)
	c.Get("a") // a is MRU
	c.Put("c", p)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// cacheServer is a fake coordinator /v1/cache endpoint for tiered tests.
type cacheServer struct {
	mu     sync.Mutex
	stored map[string]*profile.Profile
	gets   atomic.Int64
	puts   atomic.Int64
	fail   atomic.Bool
}

func newCacheServer() (*cacheServer, *httptest.Server) {
	cs := &cacheServer{stored: map[string]*profile.Profile{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		cs.gets.Add(1)
		if cs.fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		cs.mu.Lock()
		p, ok := cs.stored[r.PathValue("key")]
		cs.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		_ = json.NewEncoder(w).Encode(p)
	})
	mux.HandleFunc("PUT /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		cs.puts.Add(1)
		if cs.fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		var p profile.Profile
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cs.mu.Lock()
		cs.stored[r.PathValue("key")] = &p
		cs.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	return cs, httptest.NewServer(mux)
}

// TestTieredCacheRemoteHit covers local miss → shared hit → local fill.
func TestTieredCacheRemoteHit(t *testing.T) {
	cs, ts := newCacheServer()
	defer ts.Close()
	cs.stored["k"] = &profile.Profile{Benchmark: "remote"}

	tc := NewTieredCache(NewLRU(8), NewCacheClient(ts.URL))
	p, ok := tc.Get("k")
	if !ok || p.Benchmark != "remote" {
		t.Fatalf("remote hit missed: ok=%v p=%v", ok, p)
	}
	// Second lookup must be served locally.
	if _, ok := tc.Get("k"); !ok {
		t.Fatal("local fill missed")
	}
	if n := cs.gets.Load(); n != 1 {
		t.Fatalf("remote GETs = %d, want 1 (local tier should have filled)", n)
	}
	st := tc.Stats()
	if st.RemoteHits != 1 || st.LocalHits != 1 || st.Misses != 0 || st.RemoteErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTieredCachePutPublishes covers the write path: both tiers filled.
func TestTieredCachePutPublishes(t *testing.T) {
	cs, ts := newCacheServer()
	defer ts.Close()
	tc := NewTieredCache(NewLRU(8), NewCacheClient(ts.URL))
	tc.Put("k", &profile.Profile{Benchmark: "fresh"})
	if cs.puts.Load() != 1 {
		t.Fatalf("remote PUTs = %d, want 1", cs.puts.Load())
	}
	cs.mu.Lock()
	_, published := cs.stored["k"]
	cs.mu.Unlock()
	if !published {
		t.Fatal("profile not published to the shared tier")
	}
}

// TestTieredCacheDegradesOnRemoteErrors: a flaky shared tier is counted and
// swallowed, never surfaced to the evaluation path.
func TestTieredCacheDegradesOnRemoteErrors(t *testing.T) {
	cs, ts := newCacheServer()
	defer ts.Close()
	cs.fail.Store(true)

	tc := NewTieredCache(NewLRU(8), NewCacheClient(ts.URL))
	if _, ok := tc.Get("k"); ok {
		t.Fatal("errored remote get reported a hit")
	}
	tc.Put("k", &profile.Profile{Benchmark: "fresh"})
	if _, ok := tc.Get("k"); !ok {
		t.Fatal("local tier lost the put")
	}
	st := tc.Stats()
	if st.RemoteErrors != 2 { // one failed get + one failed put
		t.Fatalf("remote errors = %d, want 2", st.RemoteErrors)
	}
}

// TestTieredCacheConcurrentRace hammers one key from many goroutines while
// it exists only in the shared tier: every lookup must hit (local or
// remote), and the local tier must converge to containing the key. Entries
// are content-addressed, so racing fills are benign by design.
func TestTieredCacheConcurrentRace(t *testing.T) {
	cs, ts := newCacheServer()
	defer ts.Close()
	cs.stored["k"] = &profile.Profile{Benchmark: "remote"}

	tc := NewTieredCache(NewLRU(8), NewCacheClient(ts.URL))
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, ok := tc.Get("k")
			if !ok {
				errs <- "miss"
				return
			}
			if p.Benchmark != "remote" {
				errs <- "wrong profile"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := tc.Stats()
	if st.LocalHits+st.RemoteHits != n || st.Misses != 0 {
		t.Fatalf("stats = %+v, want %d hits total", st, n)
	}
	if _, ok := tc.local.Get("k"); !ok {
		t.Fatal("local tier not filled after the race")
	}
}

// TestCacheClientMiss pins the 404-is-a-miss protocol rule.
func TestCacheClientMiss(t *testing.T) {
	_, ts := newCacheServer()
	defer ts.Close()
	cc := NewCacheClient(ts.URL)
	p, ok, err := cc.Get(context.Background(), "absent")
	if err != nil || ok || p != nil {
		t.Fatalf("miss = (%v, %v, %v), want (nil, false, nil)", p, ok, err)
	}
}

// TestSearchEvaluatorBuildsKeyedRequests: the adapter addresses every
// request by the same core.EvalKey the search cache uses, so workers can
// deduplicate against the shared tier.
func TestSearchEvaluatorBuildsKeyedRequests(t *testing.T) {
	pr := testProfiler()
	var got EvalRequest
	fb := &funcBackend{name: "fake", eval: func(ctx context.Context, req EvalRequest) (EvalResult, error) {
		got = req
		return EvalResult{Profile: &profile.Profile{Benchmark: "fake"}}, nil
	}}
	ev := NewSearchEvaluator(fb, "kv-backend-test", pr)
	x := []float64{50_000, 0.9, 128}
	p, err := ev.Evaluate(context.Background(), x, 7)
	if err != nil || p.Benchmark != "fake" {
		t.Fatalf("evaluate = (%v, %v)", p, err)
	}
	if got.Kind != KindCandidate || got.Generator != "kv-backend-test" || got.Seed != 7 {
		t.Fatalf("request = %+v", got)
	}
	if want := core.EvalKey("kv-backend-test", pr, x, 7); got.Key != want || want == "" {
		t.Fatalf("key = %q, want %q", got.Key, want)
	}
}
