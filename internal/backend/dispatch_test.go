package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datamime/internal/profile"
)

// funcBackend is a scriptable fake EvalBackend for dispatcher tests.
type funcBackend struct {
	name     string
	capacity int
	eval     func(ctx context.Context, req EvalRequest) (EvalResult, error)
	health   func(ctx context.Context) error
	evals    atomic.Int64
}

func (f *funcBackend) Name() string { return f.name }
func (f *funcBackend) Evaluate(ctx context.Context, req EvalRequest) (EvalResult, error) {
	f.evals.Add(1)
	return f.eval(ctx, req)
}
func (f *funcBackend) Health(ctx context.Context) error {
	if f.health != nil {
		return f.health(ctx)
	}
	return nil
}
func (f *funcBackend) Capacity() int { return f.capacity }

func okBackend(name string) *funcBackend {
	return &funcBackend{
		name:     name,
		capacity: 1,
		eval: func(ctx context.Context, req EvalRequest) (EvalResult, error) {
			return EvalResult{Profile: &profile.Profile{Benchmark: name}}, nil
		},
	}
}

func failBackend(name string) *funcBackend {
	return &funcBackend{
		name:     name,
		capacity: 1,
		eval: func(ctx context.Context, req EvalRequest) (EvalResult, error) {
			return EvalResult{}, errors.New("synthetic worker failure")
		},
	}
}

func fastDispatcher(local EvalBackend, opts ...func(*DispatcherConfig)) *Dispatcher {
	cfg := DispatcherConfig{
		Local:       local,
		BackoffBase: time.Millisecond,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return NewDispatcher(cfg)
}

func dispatchRequest() EvalRequest {
	return EvalRequest{
		Version:  ProtocolVersion,
		Kind:     KindCandidate,
		Params:   []float64{1},
		Profiler: ProfilerSpec{Machine: "broadwell"},
	}
}

// TestDispatchEmptyFleetGoesLocal: with no workers the dispatcher is the
// local backend, with routing metadata saying so.
func TestDispatchEmptyFleetGoesLocal(t *testing.T) {
	local := okBackend("local")
	d := fastDispatcher(local)
	res, err := d.Evaluate(context.Background(), dispatchRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Remote || res.WorkerID != -1 || res.Fallback || res.Retries != 0 {
		t.Fatalf("routing = %+v", res)
	}
	c := d.Counters()
	if c.LocalEvals != 1 || c.RemoteEvals != 0 || c.Fallbacks != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestDispatchRemote: a healthy worker serves, metadata identifies it.
func TestDispatchRemote(t *testing.T) {
	local := okBackend("local")
	d := fastDispatcher(local)
	id := d.Register(okBackend("w0"))
	res, err := d.Evaluate(context.Background(), dispatchRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remote || res.WorkerID != id || res.Worker != "w0" {
		t.Fatalf("routing = %+v", res)
	}
	if local.evals.Load() != 0 {
		t.Fatal("local backend touched despite a healthy fleet")
	}
	if c := d.Counters(); c.RemoteEvals != 1 || c.Registered != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestDispatchFailureFallback: a failing single-worker fleet degrades to
// the local backend without failing the evaluation. The failed worker is
// marked unhealthy (so subsequent attempts skip it) but not yet evicted —
// eviction needs FailureLimit consecutive failed probes (see
// TestDispatchHealthProbeEviction).
func TestDispatchFailureFallback(t *testing.T) {
	var events []FleetEvent
	var evmu sync.Mutex
	local := okBackend("local")
	d := fastDispatcher(local, func(cfg *DispatcherConfig) {
		cfg.Retries = 2
		cfg.FailureLimit = 3
		cfg.OnEvent = func(ev FleetEvent) {
			evmu.Lock()
			events = append(events, ev)
			evmu.Unlock()
		}
	})
	bad := failBackend("bad")
	d.Register(bad)

	res, err := d.Evaluate(context.Background(), dispatchRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Remote || !res.Fallback || res.WorkerID != -1 || res.Retries != 1 {
		t.Fatalf("routing = %+v", res)
	}
	if res.Profile.Benchmark != "local" {
		t.Fatal("fallback did not serve from local")
	}
	if bad.evals.Load() != 1 {
		t.Fatalf("bad worker attempts = %d, want 1 (unhealthy after the first)", bad.evals.Load())
	}
	c := d.Counters()
	if c.Fallbacks != 1 || c.LocalEvals != 1 || c.Deregistered != 0 {
		t.Fatalf("counters = %+v", c)
	}
	ws := d.Workers()
	if len(ws) != 1 || ws[0].Healthy || ws[0].Failures != 1 {
		t.Fatalf("workers = %+v", ws)
	}
	evmu.Lock()
	defer evmu.Unlock()
	if len(events) != 1 || events[0].Type != FleetRegister {
		t.Fatalf("events = %+v", events)
	}
}

// TestDispatchBusyNotEvicted: ErrBusy means "healthy but saturated" — it
// must never count toward eviction.
func TestDispatchBusyNotEvicted(t *testing.T) {
	local := okBackend("local")
	d := fastDispatcher(local, func(cfg *DispatcherConfig) {
		cfg.Retries = 2
		cfg.FailureLimit = 2
	})
	busy := &funcBackend{
		name:     "busy",
		capacity: 1,
		eval: func(ctx context.Context, req EvalRequest) (EvalResult, error) {
			return EvalResult{}, fmt.Errorf("worker saturated: %w", ErrBusy)
		},
	}
	d.Register(busy)
	res, err := d.Evaluate(context.Background(), dispatchRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatalf("routing = %+v", res)
	}
	if !d.HasWorkers() {
		t.Fatal("busy worker was evicted")
	}
	ws := d.Workers()
	if len(ws) != 1 || ws[0].Failures != 0 {
		t.Fatalf("workers = %+v", ws)
	}
}

// TestDispatchRetriesSecondWorker: after one worker fails, the retry runs
// on the other and the evaluation stays remote.
func TestDispatchRetriesSecondWorker(t *testing.T) {
	local := okBackend("local")
	d := fastDispatcher(local, func(cfg *DispatcherConfig) { cfg.Retries = 2 })
	bad := failBackend("bad")
	good := okBackend("good")
	// Inflight ties break on registration order, so "bad" takes attempt 0.
	d.Register(bad)
	d.Register(good)

	res, err := d.Evaluate(context.Background(), dispatchRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remote || res.Worker != "good" || res.Retries != 1 {
		t.Fatalf("routing = %+v", res)
	}
	if local.evals.Load() != 0 {
		t.Fatal("fell back local despite a healthy second worker")
	}
	if c := d.Counters(); c.Retries != 1 || c.RemoteEvals != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestDispatchHeartbeatDedup: re-registering by URL refreshes the worker
// instead of duplicating it, and restores an unhealthy one.
func TestDispatchHeartbeatDedup(t *testing.T) {
	local := okBackend("local")
	d := fastDispatcher(local)
	reg := WorkerRegistration{URL: "http://w0:9090", Name: "w0", Capacity: 2, Protocol: ProtocolVersion}
	id1, err := d.RegisterURL(reg)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := d.RegisterURL(reg)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("re-announcement allocated a new ID: %d then %d", id1, id2)
	}
	ws := d.Workers()
	if len(ws) != 1 || ws[0].Capacity != 2 || !ws[0].Healthy {
		t.Fatalf("workers = %+v", ws)
	}
	if c := d.Counters(); c.Registered != 1 {
		t.Fatalf("registered = %d, want 1 (heartbeats are not churn)", c.Registered)
	}

	// A version-mismatched registration is rejected outright.
	bad := reg
	bad.URL = "http://w1:9090"
	bad.Protocol = ProtocolVersion + 1
	if _, err := d.RegisterURL(bad); err == nil {
		t.Fatal("accepted a protocol-mismatched registration")
	}
}

// TestDispatchAdmissionShed: when every slot is busy and the wait queue is
// full, new evaluations shed straight to the local backend instead of
// queueing behind the fleet.
func TestDispatchAdmissionShed(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	blocking := &funcBackend{
		name:     "blocking",
		capacity: 1,
		eval: func(ctx context.Context, req EvalRequest) (EvalResult, error) {
			started <- struct{}{}
			select {
			case <-release:
				return EvalResult{Profile: &profile.Profile{Benchmark: "blocking"}}, nil
			case <-ctx.Done():
				return EvalResult{}, ctx.Err()
			}
		},
	}
	local := okBackend("local")
	d := fastDispatcher(local, func(cfg *DispatcherConfig) { cfg.MaxQueue = 1 })
	d.Register(blocking)

	// Occupy the only remote slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := d.Evaluate(context.Background(), dispatchRequest()); err != nil {
			t.Error(err)
		}
	}()
	<-started

	// Fill the single queue slot with a second waiter.
	waiterIn := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(waiterIn)
		if _, err := d.Evaluate(context.Background(), dispatchRequest()); err != nil {
			t.Error(err)
		}
	}()
	<-waiterIn
	waitUntil(t, "queue depth 1", func() bool { return d.QueueDepth() == 1 })

	// The third evaluation must shed local immediately.
	res, err := d.Evaluate(context.Background(), dispatchRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Remote || res.Profile.Benchmark != "local" {
		t.Fatalf("shed evaluation routing = %+v", res)
	}
	if c := d.Counters(); c.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", c.Sheds)
	}

	close(release)
	wg.Wait()
	if c := d.Counters(); c.RemoteEvals != 2 {
		t.Fatalf("remote evals = %d, want 2 (blocked + queued)", c.RemoteEvals)
	}
}

// TestDispatchHealthProbeEviction: CheckHealth evicts a worker that fails
// FailureLimit consecutive probes, and a recovered probe resets the count.
func TestDispatchHealthProbeEviction(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	w := &funcBackend{
		name:     "flappy",
		capacity: 1,
		eval: func(ctx context.Context, req EvalRequest) (EvalResult, error) {
			return EvalResult{Profile: &profile.Profile{}}, nil
		},
		health: func(ctx context.Context) error {
			if healthy.Load() {
				return nil
			}
			return errors.New("probe refused")
		},
	}
	local := okBackend("local")
	d := fastDispatcher(local, func(cfg *DispatcherConfig) { cfg.FailureLimit = 2 })
	d.Register(w)

	ctx := context.Background()
	healthy.Store(false)
	d.CheckHealth(ctx)
	healthy.Store(true)
	d.CheckHealth(ctx) // recovery resets the failure count
	healthy.Store(false)
	d.CheckHealth(ctx)
	if !d.HasWorkers() {
		t.Fatal("evicted after non-consecutive failures")
	}
	d.CheckHealth(ctx) // second consecutive failure → eviction
	if d.HasWorkers() {
		t.Fatal("worker survived the probe failure limit")
	}
}

// TestDispatchContextCancel: a canceled context aborts the evaluation
// instead of falling back.
func TestDispatchContextCancel(t *testing.T) {
	local := okBackend("local")
	d := fastDispatcher(local)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d.Register(okBackend("w0"))
	if _, err := d.Evaluate(ctx, dispatchRequest()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
