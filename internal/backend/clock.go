package backend

import "sync"

// Clock alignment: workers stamp their shipped spans with their own wall
// clock, which may be arbitrarily skewed from the coordinator's. Every
// health probe and evaluation round trip yields an NTP-style midpoint
// sample — the worker reports its clock at some instant between the
// coordinator's send (t0) and receive (t2), so
//
//	offset = worker − (t0+t2)/2,  uncertainty = (t2−t0)/2
//
// bounds the true offset to offset ± uncertainty. The filter keeps the
// minimum-uncertainty (minimum-RTT) sample seen, the classic defense
// against queueing delay inflating the estimate. Rebasing subtracts the
// offset from every worker timestamp; it is order-preserving by
// construction, so a monotonic worker-side span stream stays monotonic on
// the coordinator timeline.

// ClockEstimate is a worker-clock offset estimate with its error bound.
type ClockEstimate struct {
	// OffsetNS estimates worker clock minus coordinator clock.
	OffsetNS int64 `json:"offset_ns"`
	// UncertaintyNS is the half-RTT error bound: the true offset lies in
	// OffsetNS ± UncertaintyNS (assuming symmetric network delay).
	UncertaintyNS int64 `json:"uncertainty_ns"`
	// Samples counts round trips observed since the backend was built.
	Samples int `json:"samples"`
}

// clockFilter accumulates round-trip samples and keeps the best estimate.
type clockFilter struct {
	mu   sync.Mutex
	best ClockEstimate
	ok   bool
}

// MidpointOffset computes one sample: t0 and t2 are the coordinator's
// clock before send and after receive, workerNS the worker clock reported
// in between.
func MidpointOffset(t0, t2, workerNS int64) (offsetNS, uncertaintyNS int64) {
	mid := t0 + (t2-t0)/2
	return workerNS - mid, (t2 - t0) / 2
}

// observe folds one round-trip sample into the filter. Samples without a
// worker timestamp (workerNS == 0, e.g. a pre-v2 peer) are ignored.
func (c *clockFilter) observe(t0, t2, workerNS int64) {
	if workerNS == 0 || t2 < t0 {
		return
	}
	off, unc := MidpointOffset(t0, t2, workerNS)
	c.mu.Lock()
	c.best.Samples++
	if !c.ok || unc < c.best.UncertaintyNS {
		c.best.OffsetNS, c.best.UncertaintyNS = off, unc
		c.ok = true
	}
	c.mu.Unlock()
}

// estimate returns the current best estimate and whether one exists.
func (c *clockFilter) estimate() (ClockEstimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.best, c.ok
}

// RebaseSpans maps worker-stamped spans onto the coordinator timeline by
// subtracting offsetNS from every wall-clock stamp. The input is not
// mutated. Rebasing is deterministic and order-preserving: it applies one
// fixed translation, so spans that were monotonic in the worker's clock
// remain monotonic, whatever the skew.
func RebaseSpans(spans []WireSpan, offsetNS int64) []WireSpan {
	if len(spans) == 0 || offsetNS == 0 {
		return spans
	}
	out := make([]WireSpan, len(spans))
	copy(out, spans)
	for i := range out {
		if out[i].TimeNS != 0 {
			out[i].TimeNS -= offsetNS
		}
	}
	return out
}
