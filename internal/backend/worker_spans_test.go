package backend

import (
	"context"
	"testing"

	"datamime/internal/telemetry"
)

// TestWorkerShipsSpansWithTraceContext: a request carrying a TraceID gets
// the worker's captured telemetry back in the response envelope — sim spans
// on a miss, a cache.probe span either way — while a request without trace
// context gets none, keeping the default wire format span-free.
func TestWorkerShipsSpansWithTraceContext(t *testing.T) {
	_, rb, _ := newTestWorker(t, WorkerConfig{})
	pr := testProfiler()
	req := testRequest(pr)
	req.Key = "span-key"
	req.TraceID = "span-key"

	res, err := rb.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ws := range res.Spans {
		counts[ws.Phase]++
		if ws.TimeNS == 0 {
			t.Errorf("shipped %s span without a wall-clock stamp", ws.Phase)
		}
	}
	if counts[telemetry.PhaseSimRun] == 0 {
		t.Errorf("miss response shipped no %s spans: %v", telemetry.PhaseSimRun, counts)
	}
	if counts[telemetry.PhaseCacheProbe] != 1 {
		t.Errorf("miss response shipped %d cache probes, want 1", counts[telemetry.PhaseCacheProbe])
	}
	probe := findSpan(res.Spans, telemetry.PhaseCacheProbe)
	if probe.Attrs[telemetry.AttrCacheHit] != 0 {
		t.Error("first probe reported a cache hit")
	}

	// The repeat is a worker-tier hit: only the probe span ships, attributed
	// hit + tier 1.
	res2, err := rb.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheTier != TierWorker {
		t.Fatalf("repeat tier = %q, want %q", res2.CacheTier, TierWorker)
	}
	if len(res2.Spans) != 1 {
		t.Fatalf("hit response shipped %d spans, want just the probe", len(res2.Spans))
	}
	probe = findSpan(res2.Spans, telemetry.PhaseCacheProbe)
	if probe.Attrs[telemetry.AttrCacheHit] != 1 || probe.Attrs[telemetry.AttrCacheTier] != 1 {
		t.Errorf("hit probe attrs = %v, want cache_hit=1 tier=1", probe.Attrs)
	}

	// Clock samples ride along once any round trip completes.
	if !res2.ClockOffsetOK {
		t.Error("no clock-offset estimate after two round trips")
	}

	// Without trace context the envelope stays lean.
	req.Key, req.TraceID = "plain-key", ""
	res3, err := rb.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Spans) != 0 {
		t.Errorf("untraced response shipped %d spans, want 0", len(res3.Spans))
	}
}

func findSpan(spans []WireSpan, phase string) WireSpan {
	for _, ws := range spans {
		if ws.Phase == phase {
			return ws
		}
	}
	return WireSpan{}
}
