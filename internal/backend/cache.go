package backend

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datamime/internal/core"
	"datamime/internal/profile"
)

// CacheStats snapshots an LRU's lifetime counters and current size.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// LRU is a bounded least-recently-used implementation of core.EvalCache:
// the coordinator's shared evaluation cache and each worker's local tier.
// Hit/miss/eviction counters are atomics so metric scrapes never contend
// with the structural lock.
type LRU struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type lruEntry struct {
	key  string
	prof *profile.Profile
}

// NewLRU builds a cache holding up to capacity profiles (<= 0 selects the
// default of 4096).
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		capacity = 4096
	}
	return &LRU{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get implements core.EvalCache.
func (c *LRU) Get(key string) (*profile.Profile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).prof, true
}

// Put implements core.EvalCache.
func (c *LRU) Put(key string, p *profile.Profile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).prof = p
		return
	}
	c.entries[key] = c.ll.PushFront(&lruEntry{key: key, prof: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

// Stats returns the cumulative counters and current size.
func (c *LRU) Stats() CacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

var _ core.EvalCache = (*LRU)(nil)

// CacheClient speaks the shared-cache protocol to a coordinator:
// GET/PUT /v1/cache/{key} with profile JSON bodies. A 404 is a miss;
// anything else unexpected is an error the TieredCache absorbs (a flaky
// shared tier degrades to local-only, never fails an evaluation).
type CacheClient struct {
	base string
	hc   *http.Client
}

// NewCacheClient builds a client for the coordinator at baseURL.
func NewCacheClient(baseURL string) *CacheClient {
	return &CacheClient{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: 15 * time.Second},
	}
}

// Get fetches the profile stored under key, reporting found/not-found.
func (c *CacheClient) Get(ctx context.Context, key string) (*profile.Profile, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathCache+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer drain(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("backend: cache get %s: HTTP %d", key, resp.StatusCode)
	}
	var p profile.Profile
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, false, fmt.Errorf("backend: cache get %s: decoding: %w", key, err)
	}
	return &p, true, nil
}

// Put publishes a freshly measured profile under key.
func (c *CacheClient) Put(ctx context.Context, key string, p *profile.Profile) error {
	body, err := json.Marshal(p)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+PathCache+key, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("backend: cache put %s: HTTP %d", key, resp.StatusCode)
	}
	return nil
}

// TieredStats snapshots a TieredCache's counters.
type TieredStats struct {
	LocalHits    uint64
	RemoteHits   uint64
	Misses       uint64
	RemoteErrors uint64
}

// TieredCache is the two-tier content-addressed lookup a worker runs: a
// local tier (typically an LRU) consulted first, then the coordinator's
// shared cache endpoint. Remote hits are pulled into the local tier; fresh
// measurements are published to both, so a fleet deduplicates simulation
// work globally. The remote tier is strictly best-effort: every error is
// counted and swallowed, degrading to local-only behavior. Entries are
// content-addressed and the simulator is deterministic, so concurrent
// fill races are benign — every writer writes the same bytes.
type TieredCache struct {
	local  core.EvalCache
	remote *CacheClient

	localHits  atomic.Uint64
	remoteHits atomic.Uint64
	misses     atomic.Uint64
	remoteErrs atomic.Uint64
}

// NewTieredCache layers local over the shared tier behind remote (nil
// remote means local-only).
func NewTieredCache(local core.EvalCache, remote *CacheClient) *TieredCache {
	if local == nil {
		local = NewLRU(0)
	}
	return &TieredCache{local: local, remote: remote}
}

// Cache tier names, as reported in EvalResult.CacheTier and cache.probe
// telemetry.
const (
	TierWorker = "worker"
	TierShared = "shared"
)

// Get implements core.EvalCache: local tier, then shared tier (filling
// local on a remote hit).
func (t *TieredCache) Get(key string) (*profile.Profile, bool) {
	p, _, ok := t.GetTier(key)
	return p, ok
}

// GetTier is Get plus which tier served the hit: TierWorker (the local
// tier), TierShared (the coordinator's shared endpoint), or "" on a miss.
func (t *TieredCache) GetTier(key string) (*profile.Profile, string, bool) {
	if p, ok := t.local.Get(key); ok {
		t.localHits.Add(1)
		return p, TierWorker, true
	}
	if t.remote != nil {
		p, ok, err := t.remote.Get(context.Background(), key)
		if err != nil {
			t.remoteErrs.Add(1)
		} else if ok {
			t.remoteHits.Add(1)
			t.local.Put(key, p)
			return p, TierShared, true
		}
	}
	t.misses.Add(1)
	return nil, "", false
}

// Put implements core.EvalCache: fill the local tier and publish to the
// shared tier.
func (t *TieredCache) Put(key string, p *profile.Profile) {
	t.local.Put(key, p)
	if t.remote != nil {
		if err := t.remote.Put(context.Background(), key, p); err != nil {
			t.remoteErrs.Add(1)
		}
	}
}

// Stats returns the tier counters.
func (t *TieredCache) Stats() TieredStats {
	return TieredStats{
		LocalHits:    t.localHits.Load(),
		RemoteHits:   t.remoteHits.Load(),
		Misses:       t.misses.Load(),
		RemoteErrors: t.remoteErrs.Load(),
	}
}

var _ core.EvalCache = (*TieredCache)(nil)
