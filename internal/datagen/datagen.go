// Package datagen defines Datamime's dataset generators: for each
// application, the Table III parameter space and the mapping from a
// parameter vector to a runnable benchmark (program + synthetic dataset +
// offered load). These are the knobs the optimizer searches; note that none
// of the hidden target characteristics (popularity skew, churn, value-size
// distribution *family*) appear here — the generators follow the paper's
// systematic parameterization procedure (§III-B) without any knowledge of
// the target's dataset.
package datagen

import (
	"fmt"

	"datamime/internal/apps/kvstore"
	"datamime/internal/apps/nn"
	"datamime/internal/apps/searchidx"
	"datamime/internal/apps/silodb"
	"datamime/internal/opt"
	"datamime/internal/stats"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

// Generator couples a parameter space with its benchmark factory.
type Generator struct {
	// Name identifies the generator ("memcached", "silo", "xapian", "dnn").
	Name string
	// Space is the searchable parameter domain (Table III).
	Space *opt.Space
	// Benchmark instantiates the program + dataset for one parameter
	// vector (in denormalized parameter units, Space order).
	Benchmark func(params []float64) workload.Benchmark
}

// Memcached returns the memcached dataset generator: QPS, GET/SET ratio,
// and Gaussian key/value size parameters (Table III).
func Memcached() Generator {
	space := opt.MustSpace(
		opt.Param{Name: "qps", Lo: 5_000, Hi: 400_000, Log: true},
		opt.Param{Name: "get_ratio", Lo: 0, Hi: 1},
		opt.Param{Name: "key_mu", Lo: 8, Hi: 160, Integer: true},
		opt.Param{Name: "key_sigma", Lo: 1, Hi: 48, Integer: true},
		opt.Param{Name: "val_mu", Lo: 16, Hi: 6_000, Log: true, Integer: true},
		opt.Param{Name: "val_sigma", Lo: 1, Hi: 2_000, Log: true, Integer: true},
	)
	return Generator{
		Name:  "memcached",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			cfg := kvstore.Config{
				NumKeys:   110_000,
				KeySize:   stats.Normal{Mu: x[2], Sigma: x[3], Min: 4},
				ValueSize: stats.Normal{Mu: x[4], Sigma: x[5], Min: 1},
				GetRatio:  x[1],
			}
			return workload.Benchmark{
				Name: fmt.Sprintf("memcached[%s]", space.Values(x)),
				QPS:  x[0],
				NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
					return kvstore.New(cfg, layout, seed)
				},
			}
		},
	}
}

// MemcachedCompressible extends the memcached generator with a value-
// entropy parameter (bits per byte), implementing the paper's §III-D
// future-work sketch: the generator can then be searched to produce data
// with the target's snapshot compression ratio — without ever seeing the
// target's values.
func MemcachedCompressible() Generator {
	base := Memcached()
	params := append(append([]opt.Param{}, base.Space.Params...),
		opt.Param{Name: "val_entropy", Lo: 0.5, Hi: 8})
	space := opt.MustSpace(params...)
	return Generator{
		Name:  "memcached-compressible",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			cfg := kvstore.Config{
				NumKeys:      110_000,
				KeySize:      stats.Normal{Mu: x[2], Sigma: x[3], Min: 4},
				ValueSize:    stats.Normal{Mu: x[4], Sigma: x[5], Min: 1},
				GetRatio:     x[1],
				ValueEntropy: x[6],
			}
			return workload.Benchmark{
				Name: fmt.Sprintf("memcached-compressible[%s]", space.Values(x)),
				QPS:  x[0],
				NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
					return kvstore.New(cfg, layout, seed)
				},
			}
		},
	}
}

// Silo returns the silo dataset generator: QPS, TPC-C warehouse scaling,
// and the five transaction-type ratios (Table III).
func Silo() Generator {
	space := opt.MustSpace(
		opt.Param{Name: "qps", Lo: 2_000, Hi: 200_000, Log: true},
		opt.Param{Name: "warehouses", Lo: 1, Hi: 48, Integer: true},
		opt.Param{Name: "w_new_order", Lo: 0, Hi: 1},
		opt.Param{Name: "w_payment", Lo: 0, Hi: 1},
		opt.Param{Name: "w_delivery", Lo: 0, Hi: 1},
		opt.Param{Name: "w_order_status", Lo: 0, Hi: 1},
		opt.Param{Name: "w_stock_level", Lo: 0, Hi: 1},
	)
	return Generator{
		Name:  "silo",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			mix := [5]float64{x[2], x[3], x[4], x[5], x[6]}
			var sum float64
			for _, w := range mix {
				sum += w
			}
			if sum <= 0 {
				mix = [5]float64{1, 1, 1, 1, 1} // degenerate corner: uniform
			}
			cfg := silodb.Config{
				Mode:       silodb.ModeTPCC,
				Warehouses: int(x[1]),
				TxMix:      mix,
			}
			return workload.Benchmark{
				Name: fmt.Sprintf("silo[%s]", space.Values(x)),
				QPS:  x[0],
				NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
					return silodb.New(cfg, layout, seed)
				},
			}
		},
	}
}

// Xapian returns the xapian dataset generator: QPS, Zipfian query skew,
// term-frequency limit, and average document length (Table III). Documents
// have near-constant length, as the paper selects pages "whose sizes are
// within 50 bytes of the desired average document length".
func Xapian() Generator {
	space := opt.MustSpace(
		opt.Param{Name: "qps", Lo: 200, Hi: 30_000, Log: true},
		opt.Param{Name: "zipf_skew", Lo: 0, Hi: 1.4},
		opt.Param{Name: "term_freq", Lo: 0.002, Hi: 0.5, Log: true},
		opt.Param{Name: "doc_len", Lo: 128, Hi: 16_000, Log: true, Integer: true},
	)
	return Generator{
		Name:  "xapian",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			cfg := searchidx.Config{
				Corpus: searchidx.CorpusConfig{
					NumDocs:   50_000,
					NumTerms:  24_000,
					DocLength: stats.Normal{Mu: x[3], Sigma: 25, Min: 64},
					DFSkew:    0.85,
					MaxDF:     0.20,
				},
				QuerySkew:     x[1],
				QueryMaxDF:    x[2],
				TermsPerQuery: 2,
				TopK:          8,
			}
			return workload.Benchmark{
				Name: fmt.Sprintf("xapian[%s]", space.Values(x)),
				QPS:  x[0],
				NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
					return searchidx.New(cfg, layout, seed)
				},
			}
		},
	}
}

// DNN returns the dnn dataset generator: QPS plus the network-composition
// parameters of Table III — counts of 3×3 convs, strided convs, maxpools,
// FC layers, and the first layer's output channels. The network (the
// dataset of this workload) is synthesized from these counts.
func DNN() Generator {
	space := opt.MustSpace(
		opt.Param{Name: "qps", Lo: 100, Hi: 20_000, Log: true},
		opt.Param{Name: "conv", Lo: 0, Hi: 24, Integer: true},
		opt.Param{Name: "strided_conv", Lo: 0, Hi: 4, Integer: true},
		opt.Param{Name: "maxpool", Lo: 0, Hi: 4, Integer: true},
		opt.Param{Name: "fc", Lo: 1, Hi: 4, Integer: true},
		opt.Param{Name: "first_chan", Lo: 4, Hi: 160, Log: true, Integer: true},
	)
	return Generator{
		Name:  "dnn",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			spec := nn.Synthesize(nn.SynthParams{
				Conv:        int(x[1]),
				StridedConv: int(x[2]),
				MaxPool:     int(x[3]),
				FC:          int(x[4]),
				FirstChan:   int(x[5]),
				InputHW:     16,
				Classes:     100,
			})
			return workload.Benchmark{
				Name: fmt.Sprintf("dnn[%s]", space.Values(x)),
				QPS:  x[0],
				NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
					return nn.New(spec, layout, seed)
				},
			}
		},
	}
}

// All returns every generator, keyed by the paper's application names.
func All() []Generator {
	return []Generator{Memcached(), Silo(), Xapian(), DNN()}
}

// ByName resolves a generator.
func ByName(name string) (Generator, error) {
	for _, g := range All() {
		if g.Name == name {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("datagen: unknown generator %q", name)
}
