package datagen

import (
	"testing"

	"datamime/internal/opt"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

func TestAllGeneratorsResolve(t *testing.T) {
	gens := All()
	if len(gens) != 4 {
		t.Fatalf("%d generators", len(gens))
	}
	for _, g := range gens {
		got, err := ByName(g.Name)
		if err != nil || got.Name != g.Name {
			t.Fatalf("ByName(%q): %v", g.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown generator resolved")
	}
}

func TestTableIIIParameterNames(t *testing.T) {
	// The spaces must carry exactly the Table III knobs.
	mustHave := map[string][]string{
		"memcached": {"qps", "get_ratio", "key_mu", "key_sigma", "val_mu", "val_sigma"},
		"silo":      {"qps", "warehouses", "w_new_order", "w_payment", "w_delivery", "w_order_status", "w_stock_level"},
		"xapian":    {"qps", "zipf_skew", "term_freq", "doc_len"},
		"dnn":       {"qps", "conv", "strided_conv", "maxpool", "fc", "first_chan"},
	}
	for _, g := range All() {
		want := mustHave[g.Name]
		names := g.Space.Names()
		if len(names) != len(want) {
			t.Fatalf("%s: %d params, want %d", g.Name, len(names), len(want))
		}
		for i, n := range want {
			if names[i] != n {
				t.Fatalf("%s param %d = %q, want %q", g.Name, i, names[i], n)
			}
		}
	}
}

func TestEveryGeneratorBuildsRunnableBenchmarks(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, g := range All() {
		// A handful of random corners of the space must all produce a
		// valid, runnable benchmark (BO will visit weird corners).
		for trial := 0; trial < 4; trial++ {
			var u []float64
			switch trial {
			case 0:
				u = make([]float64, g.Space.Dim()) // all-lo corner
			case 1:
				u = make([]float64, g.Space.Dim())
				for i := range u {
					u[i] = 1 // all-hi corner
				}
			default:
				u = g.Space.Sample(rng)
			}
			x := g.Space.Denormalize(u)
			b := g.Benchmark(x)
			if err := b.Validate(); err != nil {
				t.Fatalf("%s trial %d: %v", g.Name, trial, err)
			}
			srv := b.NewServer(trace.NewCodeLayout(), 1)
			rec := trace.NewRecorder()
			reqRNG := stats.NewRNG(2)
			for i := 0; i < 3; i++ {
				srv.Handle(rec, reqRNG)
			}
			if rec.Instrs == 0 {
				t.Fatalf("%s trial %d: server did no work", g.Name, trial)
			}
		}
	}
}

func TestSiloZeroMixCornerIsHandled(t *testing.T) {
	g := Silo()
	// Force all mix weights to zero: the factory must fall back.
	x := g.Space.Denormalize(make([]float64, g.Space.Dim()))
	for i := 2; i < 7; i++ {
		x[i] = 0
	}
	b := g.Benchmark(x)
	srv := b.NewServer(trace.NewCodeLayout(), 3)
	rec := trace.NewRecorder()
	srv.Handle(rec, stats.NewRNG(4))
	if rec.Instrs == 0 {
		t.Fatal("zero-mix corner produced a dead server")
	}
}

func TestGeneratorsHideTargetKnobs(t *testing.T) {
	// The generators must not expose hidden target characteristics
	// (popularity skew, churn) — §III-B's premise is that parameterization
	// needs no knowledge of the target dataset.
	for _, g := range All() {
		for _, p := range g.Space.Params {
			switch p.Name {
			case "popularity_skew", "churn", "crawl":
				t.Fatalf("%s exposes hidden target knob %q", g.Name, p.Name)
			}
		}
	}
}

func TestCompressibleGeneratorExtendsMemcached(t *testing.T) {
	base := Memcached()
	ext := MemcachedCompressible()
	if ext.Space.Dim() != base.Space.Dim()+1 {
		t.Fatalf("compressible space dim %d, want %d", ext.Space.Dim(), base.Space.Dim()+1)
	}
	names := ext.Space.Names()
	if names[len(names)-1] != "val_entropy" {
		t.Fatalf("last param = %s", names[len(names)-1])
	}
	// The entropy knob only changes the compression ratio, not the events.
	rng := stats.NewRNG(9)
	u := ext.Space.Sample(rng)
	lowEntropy := ext.Space.Denormalize(u)
	lowEntropy[len(lowEntropy)-1] = 1.0
	highEntropy := append([]float64(nil), lowEntropy...)
	highEntropy[len(highEntropy)-1] = 8.0

	ratioOf := func(x []float64) float64 {
		b := ext.Benchmark(x)
		srv := b.NewServer(trace.NewCodeLayout(), 1)
		c, ok := srv.(interface{ CompressionRatio() float64 })
		if !ok {
			t.Fatal("compressible benchmark server lacks CompressionRatio")
		}
		return c.CompressionRatio()
	}
	if ratioOf(lowEntropy) <= ratioOf(highEntropy) {
		t.Fatal("entropy parameter does not drive the compression ratio")
	}
}

func TestSpacesAreBayesOptCompatible(t *testing.T) {
	// Dimensionalities stay in the <=20-dimension regime the paper cites
	// for Bayesian optimization.
	for _, g := range All() {
		if d := g.Space.Dim(); d < 4 || d > 20 {
			t.Fatalf("%s space has %d dimensions", g.Name, d)
		}
		// And a BayesOpt can be constructed over each.
		if o := opt.NewBayesOpt(g.Space, opt.BayesOptConfig{Seed: 1}); o == nil {
			t.Fatal("optimizer construction failed")
		}
	}
}
