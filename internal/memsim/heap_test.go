package memsim

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndDistinctness(t *testing.T) {
	h := NewHeap()
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		a := h.Alloc(48)
		if a%16 != 0 {
			t.Fatalf("allocation %#x not 16-byte aligned", a)
		}
		if seen[a] {
			t.Fatalf("address %#x returned twice without Free", a)
		}
		seen[a] = true
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	h := NewHeap()
	type span struct{ lo, hi uint64 }
	var spans []span
	sizes := []int{1, 16, 17, 100, 1024, 5000}
	for _, sz := range sizes {
		a := h.Alloc(sz)
		spans = append(spans, span{a, a + uint64(sz)})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("allocations %d and %d overlap: %+v %+v", i, j, spans[i], spans[j])
			}
		}
	}
}

func TestFreeEnablesReuse(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(100) // class 128
	h.Free(a, 100)
	b := h.Alloc(120) // same class
	if a != b {
		t.Fatalf("freed address not reused: %#x vs %#x", a, b)
	}
	// A different class must not reuse it.
	h.Free(b, 100)
	c := h.Alloc(1000)
	if c == a {
		t.Fatal("cross-class reuse")
	}
}

func TestLiveBytesAccounting(t *testing.T) {
	h := NewHeap()
	if h.LiveBytes() != 0 {
		t.Fatal("fresh heap not empty")
	}
	a := h.Alloc(100) // rounds to 128
	if h.LiveBytes() != 128 {
		t.Fatalf("LiveBytes = %d, want 128", h.LiveBytes())
	}
	b := h.Alloc(5000) // rounds to 2 pages = 8192
	if h.LiveBytes() != 128+8192 {
		t.Fatalf("LiveBytes = %d, want %d", h.LiveBytes(), 128+8192)
	}
	h.Free(a, 100)
	if h.LiveBytes() != 8192 {
		t.Fatalf("LiveBytes after free = %d", h.LiveBytes())
	}
	if h.PeakBytes() != 128+8192 {
		t.Fatalf("PeakBytes = %d", h.PeakBytes())
	}
	h.Free(b, 5000)
	if h.LiveBytes() != 0 {
		t.Fatalf("LiveBytes after all frees = %d", h.LiveBytes())
	}
}

func TestChurnBoundsFootprint(t *testing.T) {
	// Alternating alloc/free at steady state must not grow the heap: the
	// slab allocator recycles addresses, mirroring memcached's slabs.
	h := NewHeap()
	addrs := make([]uint64, 100)
	for i := range addrs {
		addrs[i] = h.Alloc(64)
	}
	high := h.PeakBytes()
	for round := 0; round < 1000; round++ {
		i := round % len(addrs)
		h.Free(addrs[i], 64)
		addrs[i] = h.Alloc(64)
	}
	if h.PeakBytes() != high {
		t.Fatalf("steady-state churn grew the heap: %d -> %d", high, h.PeakBytes())
	}
}

func TestSizeClassProperty(t *testing.T) {
	f := func(raw uint16) bool {
		size := int(raw%8192) + 1
		c := sizeClass(size)
		return c >= size && c <= size+4096
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocPanicsOnNonPositive(t *testing.T) {
	h := NewHeap()
	for _, bad := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Alloc(%d) did not panic", bad)
				}
			}()
			h.Alloc(bad)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Free(0) did not panic")
		}
	}()
	h.Free(0x1000, 0)
}
