// Package memsim provides the simulated heap the application substrates
// allocate from. Objects get stable virtual addresses in a simulated
// address space; the addresses (not the Go runtime's) are what flow into
// the cache and TLB models, so the simulated working set is controlled by
// the dataset — exactly the lever Datamime's generators turn.
//
// The allocator is a size-class slab allocator with free lists, mirroring
// the behavior of production allocators (memcached's slab allocator,
// malloc): freed addresses are reused, so long-running churn (SET-heavy
// key-value load, database inserts/deletes) keeps a bounded, locality-rich
// footprint rather than an ever-growing one.
package memsim

import "fmt"

// heapBase is where the simulated heap begins (above the text segment laid
// out by trace.CodeLayout).
const heapBase = 0x0000000010000000

// sizeClasses are the slab size classes in bytes. Allocations round up to
// the nearest class; larger requests are satisfied at 4 KiB page
// granularity.
var sizeClasses = []int{
	16, 32, 48, 64, 96, 128, 192, 256, 384, 512,
	768, 1024, 1536, 2048, 3072, 4096,
}

// Heap is a simulated-address allocator. It is not safe for concurrent use;
// each simulated workload owns one heap (the paper profiles a single
// pinned worker thread).
type Heap struct {
	next      uint64
	freeLists map[int][]uint64 // size class -> reusable addresses
	allocated uint64           // live bytes
	peak      uint64
}

// NewHeap returns an empty heap.
func NewHeap() *Heap {
	return &Heap{next: heapBase, freeLists: make(map[int][]uint64)}
}

// Alloc reserves size bytes and returns the simulated address. Addresses
// are 16-byte aligned. Alloc panics on non-positive sizes: the substrates
// always know their object sizes.
func (h *Heap) Alloc(size int) uint64 {
	if size <= 0 {
		panic(fmt.Sprintf("memsim: Alloc(%d)", size))
	}
	class := sizeClass(size)
	if fl := h.freeLists[class]; len(fl) > 0 {
		addr := fl[len(fl)-1]
		h.freeLists[class] = fl[:len(fl)-1]
		h.account(class)
		return addr
	}
	addr := h.next
	h.next += uint64(class)
	// Keep 16-byte alignment for the next allocation.
	if rem := h.next % 16; rem != 0 {
		h.next += 16 - rem
	}
	h.account(class)
	return addr
}

// Free returns an allocation of the given size at addr to its size-class
// free list for reuse.
func (h *Heap) Free(addr uint64, size int) {
	if size <= 0 {
		panic(fmt.Sprintf("memsim: Free(%d)", size))
	}
	class := sizeClass(size)
	h.freeLists[class] = append(h.freeLists[class], addr)
	h.allocated -= uint64(class)
}

// LiveBytes returns the currently allocated bytes (rounded to size
// classes), i.e. the simulated resident data footprint.
func (h *Heap) LiveBytes() uint64 { return h.allocated }

// PeakBytes returns the high-water mark of LiveBytes.
func (h *Heap) PeakBytes() uint64 { return h.peak }

func (h *Heap) account(class int) {
	h.allocated += uint64(class)
	if h.allocated > h.peak {
		h.peak = h.allocated
	}
}

// sizeClass rounds a request up to its slab class; oversized requests round
// up to whole 4 KiB pages.
func sizeClass(size int) int {
	for _, c := range sizeClasses {
		if size <= c {
			return c
		}
	}
	const page = 4096
	pages := (size + page - 1) / page
	return pages * page
}
