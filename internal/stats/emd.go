package stats

import (
	"math"
	"sort"
)

// EMD computes the Earth Mover's Distance between the empirical
// distributions of two one-dimensional sample sets. For 1-D distributions
// the EMD equals the area between the two CDFs (§III-C, citing Henderson et
// al.), i.e. the L1 distance between the inverse CDFs:
//
//	EMD = ∫ |F_a(x) - F_b(x)| dx
//
// The cost of moving one sample a unit distance is 1/N, matching the
// paper's definition. The two sample sets may have different sizes; the
// implementation integrates |F_a - F_b| exactly over the merged support.
//
// EMD sorts copies of both inputs on every call. Callers that hold one (or
// both) distributions fixed across many comparisons — the search loop
// compares every candidate against the same target — should sort once and
// use EMDSorted instead.
func EMD(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return emdDegenerate(a, b)
	}
	return EMDSorted(sortedCopy(a), sortedCopy(b))
}

// EMDSorted is EMD over sample sets that are already sorted ascending. It
// performs no allocation and no sorting: one merge sweep over both inputs.
// Passing unsorted data yields an undefined result; in race/debug builds
// callers are expected to sort via NewECDF or sortedCopy.
func EMDSorted(as, bs []float64) float64 {
	if len(as) == 0 || len(bs) == 0 {
		return emdDegenerate(as, bs)
	}
	// Sweep the merged sorted support, integrating |F_a(x) - F_b(x)| over
	// each interval between consecutive distinct sample values.
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	var total float64
	prev := math.Min(as[0], bs[0])
	for i < len(as) || j < len(bs) {
		var x float64
		switch {
		case i >= len(as):
			x = bs[j]
		case j >= len(bs):
			x = as[i]
		default:
			x = math.Min(as[i], bs[j])
		}
		fa := float64(i) / na
		fb := float64(j) / nb
		total += math.Abs(fa-fb) * (x - prev)
		prev = x
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
	}
	return total
}

// emdDegenerate handles empty sample sets: the distance is undefined in the
// transport sense; treat it as the full spread of the non-empty one so the
// optimizer strongly penalizes missing profiles.
func emdDegenerate(a, b []float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	s := a
	if len(s) == 0 {
		s = b
	}
	mn, mx := minMax(s)
	return mx - mn
}

// NormalizedEMD computes the EMD after normalizing both the x-axis and
// y-axis to [0, 1], exactly as Fig. 10's caption describes: "the x- and
// y-axes are normalized ... by dividing them by maximum x and y values
// observed". The y-axis of a CDF is already in [0, 1]; the x-axis is scaled
// by the maximum absolute sample value observed across both sets. The
// result is the fraction of the unit plot area between the two CDFs, so a
// perfectly matching pair scores 0 and maximally separated distributions
// approach 1.
func NormalizedEMD(a, b []float64) float64 {
	maxAbs := math.Max(maxAbsUnsorted(a), maxAbsUnsorted(b))
	if maxAbs == 0 {
		return 0
	}
	return EMD(a, b) / maxAbs
}

// NormalizedEMDSorted is NormalizedEMD over pre-sorted sample sets. The
// x-axis scale comes from the slice ends (the largest absolute value of a
// sorted set is at one of them), so the whole computation is a single
// allocation-free sweep.
func NormalizedEMDSorted(as, bs []float64) float64 {
	maxAbs := math.Max(maxAbsSorted(as), maxAbsSorted(bs))
	if maxAbs == 0 {
		return 0
	}
	return EMDSorted(as, bs) / maxAbs
}

// KSDistance returns the Kolmogorov–Smirnov statistic between two sample
// sets: the maximum vertical distance between their eCDFs. The paper notes
// KS as a viable alternative to EMD (§III-C); it is provided for the error
// model ablations.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 0
		}
		return 1
	}
	return KSSorted(sortedCopy(a), sortedCopy(b))
}

// KSSorted is KSDistance over sample sets that are already sorted
// ascending; like EMDSorted it allocates nothing.
func KSSorted(as, bs []float64) float64 {
	if len(as) == 0 || len(bs) == 0 {
		if len(as) == 0 && len(bs) == 0 {
			return 0
		}
		return 1
	}
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	var maxDiff float64
	for i < len(as) && j < len(bs) {
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / na
		fb := float64(j) / nb
		maxDiff = math.Max(maxDiff, math.Abs(fa-fb))
	}
	return maxDiff
}

// SortedCopy returns an ascending-sorted copy of s, leaving s untouched.
// Callers that compare one distribution against many (e.g. a search target
// against every candidate) sort it once with SortedCopy and use the
// *Sorted distance variants.
func SortedCopy(s []float64) []float64 {
	return sortedCopy(s)
}

func sortedCopy(s []float64) []float64 {
	c := make([]float64, len(s))
	copy(c, s)
	sort.Float64s(c)
	return c
}

func minMax(s []float64) (mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, v := range s {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	return mn, mx
}

// maxAbsUnsorted scans for the largest absolute value.
func maxAbsUnsorted(s []float64) float64 {
	maxAbs := 0.0
	for _, v := range s {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	return maxAbs
}

// maxAbsSorted reads the largest absolute value of a sorted set off its
// ends.
func maxAbsSorted(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	return math.Max(math.Abs(s[0]), math.Abs(s[len(s)-1]))
}
