package stats

import (
	"math"
	"sort"
)

// EMD computes the Earth Mover's Distance between the empirical
// distributions of two one-dimensional sample sets. For 1-D distributions
// the EMD equals the area between the two CDFs (§III-C, citing Henderson et
// al.), i.e. the L1 distance between the inverse CDFs:
//
//	EMD = ∫ |F_a(x) - F_b(x)| dx
//
// The cost of moving one sample a unit distance is 1/N, matching the
// paper's definition. The two sample sets may have different sizes; the
// implementation integrates |F_a - F_b| exactly over the merged support.
func EMD(a, b []float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		// One distribution is empty: the distance is undefined in the
		// transport sense; treat it as the full spread of the non-empty one
		// so the optimizer strongly penalizes missing profiles.
		s := a
		if len(s) == 0 {
			s = b
		}
		mn, mx := minMax(s)
		return mx - mn
	}

	as := sortedCopy(a)
	bs := sortedCopy(b)

	// Sweep the merged sorted support, integrating |F_a(x) - F_b(x)| over
	// each interval between consecutive distinct sample values.
	i, j := 0, 0
	var total float64
	prev := math.Min(as[0], bs[0])
	for i < len(as) || j < len(bs) {
		var x float64
		switch {
		case i >= len(as):
			x = bs[j]
		case j >= len(bs):
			x = as[i]
		default:
			x = math.Min(as[i], bs[j])
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		total += math.Abs(fa-fb) * (x - prev)
		prev = x
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
	}
	return total
}

// NormalizedEMD computes the EMD after normalizing both the x-axis and
// y-axis to [0, 1], exactly as Fig. 10's caption describes: "the x- and
// y-axes are normalized ... by dividing them by maximum x and y values
// observed". The y-axis of a CDF is already in [0, 1]; the x-axis is scaled
// by the maximum absolute sample value observed across both sets. The
// result is the fraction of the unit plot area between the two CDFs, so a
// perfectly matching pair scores 0 and maximally separated distributions
// approach 1.
func NormalizedEMD(a, b []float64) float64 {
	maxAbs := 0.0
	for _, v := range a {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	for _, v := range b {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	if maxAbs == 0 {
		return 0
	}
	return EMD(a, b) / maxAbs
}

// KSDistance returns the Kolmogorov–Smirnov statistic between two sample
// sets: the maximum vertical distance between their eCDFs. The paper notes
// KS as a viable alternative to EMD (§III-C); it is provided for the error
// model ablations.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 0
		}
		return 1
	}
	as := sortedCopy(a)
	bs := sortedCopy(b)
	i, j := 0, 0
	var maxDiff float64
	for i < len(as) && j < len(bs) {
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		maxDiff = math.Max(maxDiff, math.Abs(fa-fb))
	}
	return maxDiff
}

func sortedCopy(s []float64) []float64 {
	c := make([]float64, len(s))
	copy(c, s)
	sort.Float64s(c)
	return c
}

func minMax(s []float64) (mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, v := range s {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	return mn, mx
}
