package stats

import (
	"math"
	"testing"
)

func TestZipfSupport(t *testing.T) {
	rng := NewRNG(21)
	z := NewZipf(100, 0.99)
	for i := 0; i < 10000; i++ {
		k := z.Sample(rng)
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf sample %d out of [0, 100)", k)
		}
	}
}

func TestZipfSkewZeroIsUniform(t *testing.T) {
	rng := NewRNG(22)
	const n, draws = 10, 100000
	z := NewZipf(n, 0)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Sample(rng)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("skew-0 Zipf not uniform: rank %d count %d (want ~%g)", k, c, want)
		}
	}
}

func TestZipfMonotoneFrequencies(t *testing.T) {
	rng := NewRNG(23)
	const n, draws = 20, 200000
	z := NewZipf(n, 1.0)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Sample(rng)]++
	}
	// Rank 0 must be most popular; low ranks must dominate high ranks.
	if counts[0] < counts[5] || counts[5] < counts[19] {
		t.Fatalf("Zipf frequencies not decreasing: %v", counts)
	}
	// For s=1, P(0)/P(1) should be ~2.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("Zipf(s=1) rank0/rank1 ratio = %g, want ~2", ratio)
	}
}

func TestZipfMatchesAnalyticalPMF(t *testing.T) {
	rng := NewRNG(24)
	const n, draws = 8, 400000
	for _, s := range []float64{0.5, 0.9, 1.3, 2.0} {
		z := NewZipf(n, s)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Sample(rng)]++
		}
		var norm float64
		for k := 1; k <= n; k++ {
			norm += math.Pow(float64(k), -s)
		}
		for k := 0; k < n; k++ {
			want := math.Pow(float64(k+1), -s) / norm
			got := float64(counts[k]) / draws
			if math.Abs(got-want) > 0.01 {
				t.Fatalf("s=%g rank %d: pmf %g, want %g", s, k, got, want)
			}
		}
	}
}

func TestZipfHighSkewConcentration(t *testing.T) {
	rng := NewRNG(25)
	z := NewZipf(1000000, 1.2)
	top10 := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if z.Sample(rng) < 10 {
			top10++
		}
	}
	// Analytically H(10, 1.2)/zeta(1.2) ~ 0.44; the top 10 of a million
	// ranks capture a large constant fraction of the mass.
	if frac := float64(top10) / draws; frac < 0.4 {
		t.Fatalf("high-skew Zipf top-10 mass = %g, want > 0.4", frac)
	}
}

func TestZipfSingleElement(t *testing.T) {
	rng := NewRNG(26)
	z := NewZipf(1, 1.5)
	for i := 0; i < 100; i++ {
		if z.Sample(rng) != 0 {
			t.Fatal("Zipf over single element must always return 0")
		}
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-5, 1}, {10, -0.5}, {10, math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(%d, %g) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

func TestZipfAccessors(t *testing.T) {
	z := NewZipf(42, 0.75)
	if z.N() != 42 || z.Skew() != 0.75 {
		t.Fatalf("accessors: N=%d Skew=%g", z.N(), z.Skew())
	}
}
