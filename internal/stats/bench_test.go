package stats

import "testing"

// benchSamples builds two deterministic sample sets the size of a real
// profile metric distribution (the paper's profiler collects a few dozen
// windows per metric; we bench a generous 256).
func benchSamples(n int) (a, b []float64) {
	rng := NewRNG(1)
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		a[i] = rng.Range(0, 40)
		b[i] = rng.Range(0, 40)
	}
	return a, b
}

// BenchmarkEMD measures the distribution-distance hot path of the error
// model: the sorting entry point (one sort per side per call — the old
// behavior for every evaluation) against the sorted fast path the search
// core now uses for its cached target distributions.
func BenchmarkEMD(b *testing.B) {
	x, y := benchSamples(256)
	xs, ys := sortedCopy(x), sortedCopy(y)
	b.Run("unsorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NormalizedEMD(x, y)
		}
	})
	b.Run("sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NormalizedEMDSorted(xs, ys)
		}
	})
}
