// Package stats provides the statistical substrate used throughout the
// Datamime reproduction: random-variate samplers for the distribution
// families that parameterize datasets, empirical CDFs, the Earth Mover's
// Distance error metric from the paper, histograms, and descriptive
// statistics.
//
// Everything in this package is deterministic given an RNG seed, which is
// what makes the simulated profiling pipeline reproducible while still
// exhibiting the run-to-run noise the paper's optimizer must tolerate.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a seeded pseudo-random number generator. It wraps math/rand/v2's
// PCG so that every component of the simulator can derive independent,
// reproducible streams.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator seeded with seed. Two RNGs built from the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives a new independent RNG from this one. It is used to hand
// sub-components (e.g., the arrival process vs. the key sampler) their own
// streams so that adding draws to one does not perturb the other.
func (r *RNG) Split() *RNG {
	return NewRNG(r.src.Uint64())
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// NormFloat64 returns a standard normal sample.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponential sample with rate 1.
func (r *RNG) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Range returns a uniform sample in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*r.src.Float64()
}

// Jitter returns x multiplied by a uniform factor in [1-f, 1+f]. It is used
// to add small measurement-style noise to simulated quantities.
func (r *RNG) Jitter(x, f float64) float64 {
	if f <= 0 {
		return x
	}
	return x * (1 + f*(2*r.src.Float64()-1))
}

// HashSeed mixes a string into a 64-bit seed, so named components can derive
// stable per-name streams from a base seed.
func HashSeed(base uint64, name string) uint64 {
	h := base ^ 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	// Final avalanche (splitmix64 finalizer).
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 {
		h = 1
	}
	return h
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	return math.Min(math.Max(x, lo), hi)
}
