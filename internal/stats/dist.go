package stats

import (
	"fmt"
	"math"
)

// Distribution is a one-dimensional random variate source. Dataset
// generators use distributions for sizes (key/value/document lengths) and
// the workload layer uses them for inter-arrival and service-time modeling.
type Distribution interface {
	// Sample draws one variate using rng.
	Sample(rng *RNG) float64
	// Mean returns the distribution's analytical mean (or +Inf when the
	// mean does not exist, e.g. a heavy-tailed Pareto with shape >= 1).
	Mean() float64
	// String describes the distribution for logs and serialized configs.
	String() string
}

// Normal is a Gaussian distribution truncated below at Min. The paper's
// memcached dataset generator assumes Gaussian key/value sizes (§III-B).
type Normal struct {
	Mu    float64
	Sigma float64
	Min   float64 // samples are clamped to at least Min (sizes must be > 0)
}

// Sample draws a truncated Gaussian variate.
func (n Normal) Sample(rng *RNG) float64 {
	v := n.Mu + n.Sigma*rng.NormFloat64()
	if v < n.Min {
		v = n.Min
	}
	return v
}

// Mean returns mu; the truncation bias is negligible for the parameter
// ranges the generators use (mu >> sigma typically), and the search only
// needs a monotone handle on location anyway.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string {
	return fmt.Sprintf("Normal(mu=%.3g, sigma=%.3g, min=%.3g)", n.Mu, n.Sigma, n.Min)
}

// LogNormal is a log-normal distribution: exp(N(mu, sigma)).
type LogNormal struct {
	Mu    float64 // mean of the underlying normal (log scale)
	Sigma float64 // std of the underlying normal (log scale)
}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(rng *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) String() string {
	return fmt.Sprintf("LogNormal(mu=%.3g, sigma=%.3g)", l.Mu, l.Sigma)
}

// GPareto is the generalized Pareto distribution with location Loc, scale
// Scale > 0, and shape Shape. Atikoglu et al. report that Facebook's
// memcached value sizes follow a generalized Pareto, which is why the
// hidden mem-fb target uses this family while the search generator assumes
// Gaussian (§V-A: matching the profile does not require matching the data
// distribution family).
type GPareto struct {
	Loc   float64
	Scale float64
	Shape float64
}

// Sample draws a generalized Pareto variate by inversion.
func (g GPareto) Sample(rng *RNG) float64 {
	u := rng.Float64()
	// Guard against u == 0 which would blow up the inverse CDF.
	if u < 1e-12 {
		u = 1e-12
	}
	if math.Abs(g.Shape) < 1e-9 {
		return g.Loc - g.Scale*math.Log(1-u)
	}
	return g.Loc + g.Scale*(math.Pow(1-u, -g.Shape)-1)/g.Shape
}

// Mean returns loc + scale/(1-shape) for shape < 1, +Inf otherwise.
func (g GPareto) Mean() float64 {
	if g.Shape >= 1 {
		return math.Inf(1)
	}
	return g.Loc + g.Scale/(1-g.Shape)
}

func (g GPareto) String() string {
	return fmt.Sprintf("GPareto(loc=%.3g, scale=%.3g, shape=%.3g)", g.Loc, g.Scale, g.Shape)
}

// Exponential is an exponential distribution with the given rate (lambda).
// The open-loop load generator uses it for Poisson inter-arrival times.
type Exponential struct {
	Rate float64
}

// Sample draws an exponential variate.
func (e Exponential) Sample(rng *RNG) float64 {
	if e.Rate <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / e.Rate
}

// Mean returns 1/rate.
func (e Exponential) Mean() float64 {
	if e.Rate <= 0 {
		return math.Inf(1)
	}
	return 1 / e.Rate
}

func (e Exponential) String() string { return fmt.Sprintf("Exponential(rate=%.3g)", e.Rate) }

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (u Uniform) Sample(rng *RNG) float64 { return rng.Range(u.Lo, u.Hi) }

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("Uniform(%.3g, %.3g)", u.Lo, u.Hi) }

// Constant always returns V. Useful for degenerate dataset configurations
// and tests.
type Constant struct {
	V float64
}

// Sample returns the constant.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Mean returns the constant.
func (c Constant) Mean() float64 { return c.V }

func (c Constant) String() string { return fmt.Sprintf("Constant(%.3g)", c.V) }
