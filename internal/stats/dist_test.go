package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	base := NewRNG(7)
	child := base.Split()
	// Drawing from the child must not change what a fresh split would see
	// from an identically-advanced base.
	base2 := NewRNG(7)
	child2 := base2.Split()
	for i := 0; i < 10; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("split streams not reproducible")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	rng := NewRNG(3)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if rng.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %.3f", frac)
	}
	if rng.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !rng.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestRNGJitterBounds(t *testing.T) {
	rng := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := rng.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter(100, 0.1) = %g out of [90, 110]", v)
		}
	}
	if rng.Jitter(42, 0) != 42 {
		t.Fatal("Jitter with zero factor must be identity")
	}
}

func TestHashSeedStableAndDistinct(t *testing.T) {
	a := HashSeed(1, "icache")
	b := HashSeed(1, "icache")
	c := HashSeed(1, "dcache")
	d := HashSeed(2, "icache")
	if a != b {
		t.Fatal("HashSeed not stable")
	}
	if a == c || a == d {
		t.Fatal("HashSeed collisions across names/bases")
	}
	if HashSeed(1, "") == 0 {
		t.Fatal("HashSeed must never return 0")
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRNG(11)
	d := Normal{Mu: 100, Sigma: 15, Min: 1}
	n := 50000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.Sample(rng)
	}
	if m := Mean(samples); math.Abs(m-100) > 1 {
		t.Fatalf("Normal mean = %g, want ~100", m)
	}
	if s := Std(samples); math.Abs(s-15) > 1 {
		t.Fatalf("Normal std = %g, want ~15", s)
	}
}

func TestNormalTruncation(t *testing.T) {
	rng := NewRNG(12)
	d := Normal{Mu: 2, Sigma: 10, Min: 1}
	for i := 0; i < 10000; i++ {
		if v := d.Sample(rng); v < 1 {
			t.Fatalf("truncated sample %g < min", v)
		}
	}
}

func TestLogNormalMean(t *testing.T) {
	rng := NewRNG(13)
	d := LogNormal{Mu: 3, Sigma: 0.5}
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	want := d.Mean()
	got := sum / float64(n)
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("LogNormal sample mean = %g, analytical = %g", got, want)
	}
}

func TestGParetoMeanAndSupport(t *testing.T) {
	rng := NewRNG(14)
	d := GPareto{Loc: 10, Scale: 20, Shape: 0.2}
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < d.Loc {
			t.Fatalf("GPareto sample %g below location %g", v, d.Loc)
		}
		sum += v
	}
	want := d.Mean() // 10 + 20/0.8 = 35
	got := sum / float64(n)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("GPareto sample mean = %g, analytical = %g", got, want)
	}
}

func TestGParetoHeavyTailMeanInfinite(t *testing.T) {
	d := GPareto{Loc: 0, Scale: 1, Shape: 1.5}
	if !math.IsInf(d.Mean(), 1) {
		t.Fatal("GPareto with shape >= 1 must report infinite mean")
	}
}

func TestGParetoZeroShapeIsExponential(t *testing.T) {
	rng := NewRNG(15)
	d := GPareto{Loc: 0, Scale: 2, Shape: 0}
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	got := sum / float64(n)
	if math.Abs(got-2)/2 > 0.03 {
		t.Fatalf("GPareto(shape=0) mean = %g, want ~2 (exponential)", got)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRNG(16)
	d := Exponential{Rate: 4}
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	got := sum / float64(n)
	if math.Abs(got-0.25)/0.25 > 0.03 {
		t.Fatalf("Exponential(4) mean = %g, want ~0.25", got)
	}
}

func TestUniformAndConstant(t *testing.T) {
	rng := NewRNG(17)
	u := Uniform{Lo: 5, Hi: 9}
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform sample %g out of [5, 9)", v)
		}
	}
	if u.Mean() != 7 {
		t.Fatalf("Uniform mean = %g", u.Mean())
	}
	c := Constant{V: 3.5}
	if c.Sample(rng) != 3.5 || c.Mean() != 3.5 {
		t.Fatal("Constant distribution broken")
	}
}

func TestDistributionStrings(t *testing.T) {
	ds := []Distribution{
		Normal{Mu: 1, Sigma: 2, Min: 0},
		LogNormal{Mu: 1, Sigma: 2},
		GPareto{Loc: 1, Scale: 2, Shape: 0.3},
		Exponential{Rate: 2},
		Uniform{Lo: 0, Hi: 1},
		Constant{V: 1},
	}
	for _, d := range ds {
		if d.String() == "" {
			t.Fatalf("%T has empty String()", d)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		v := Clamp(x, -1, 1)
		return v >= -1 && v <= 1 && (x < -1 || x > 1 || v == x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
