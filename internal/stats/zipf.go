package stats

import (
	"fmt"
	"math"
)

// Zipf samples ranks in [0, N) following a Zipfian distribution with skew
// parameter S >= 0: P(rank = k) ∝ 1/(k+1)^S. S = 0 degenerates to uniform.
//
// Query popularity in the search-engine workload and key popularity in the
// key-value workloads are Zipfian, matching the paper's xapian setup ("we
// also control the Zipfian skew of the query distribution", §IV) and the
// well-known skew of production key-value accesses.
//
// The implementation uses rejection-inversion (Hörmann & Derflinger), which
// supports any skew >= 0 including the s <= 1 range that math/rand's Zipf
// cannot handle, with O(1) setup-independent sampling cost.
type Zipf struct {
	n               int
	s               float64
	oneMinusS       float64
	hIntegralX1     float64
	hIntegralNum    float64
	hX1             float64
	uniformToSample float64
}

// NewZipf builds a Zipf sampler over [0, n) with skew s. It panics if
// n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("stats: NewZipf n must be positive, got %d", n))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("stats: NewZipf skew must be >= 0, got %g", s))
	}
	z := &Zipf{n: n, s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNum = z.hIntegral(float64(n) + 0.5)
	z.hX1 = z.h(1.5) - 1
	z.uniformToSample = z.hIntegralNum - z.hIntegralX1
	return z
}

// N returns the support size.
func (z *Zipf) N() int { return z.n }

// Skew returns the skew parameter s.
func (z *Zipf) Skew() float64 { return z.s }

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(rng *RNG) int {
	for {
		u := z.hIntegralX1 + rng.Float64()*z.uniformToSample
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.hX1 || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k) - 1
		}
	}
}

// h is the density proxy x^-s.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

// hIntegral is the antiderivative of h.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

// hIntegralInverse inverts hIntegral.
func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a stable Taylor fallback near 0.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2 + x*x/3
}

// helper2 computes expm1(x)/x with a stable Taylor fallback near 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2 + x*x/6
}
