package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of s, or 0 for an empty slice.
func Mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Variance returns the population variance of s, or 0 when len(s) < 2.
func Variance(s []float64) float64 {
	if len(s) < 2 {
		return 0
	}
	m := Mean(s)
	var sum float64
	for _, v := range s {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation of s.
func Std(s []float64) float64 { return math.Sqrt(Variance(s)) }

// Percentile returns the p-th percentile (0-100) of s using linear
// interpolation between order statistics. Returns 0 for an empty slice.
func Percentile(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	c := sortedCopy(s)
	if len(c) == 1 {
		return c[0]
	}
	p = Clamp(p, 0, 100)
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Min returns the smallest element of s, or +Inf for an empty slice.
func Min(s []float64) float64 {
	mn, _ := minMax(s)
	return mn
}

// Max returns the largest element of s, or -Inf for an empty slice.
func Max(s []float64) float64 {
	_, mx := minMax(s)
	return mx
}

// AbsPercentError returns |target - measured| / |target|, the paper's "mean
// absolute percentage error" building block (§V-A). When target is zero it
// returns 0 if measured is also zero and 1 otherwise.
func AbsPercentError(target, measured float64) float64 {
	if target == 0 {
		if measured == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(target-measured) / math.Abs(target)
}

// MAPE returns the mean absolute percentage error across paired slices. It
// panics if the slices have different lengths.
func MAPE(target, measured []float64) float64 {
	if len(target) != len(measured) {
		panic("stats: MAPE slices must have equal length")
	}
	if len(target) == 0 {
		return 0
	}
	var sum float64
	for i := range target {
		sum += AbsPercentError(target[i], measured[i])
	}
	return sum / float64(len(target))
}

// MAE returns the mean absolute error across paired slices, the paper's
// metric for non-IPC counters (§V-A). It panics if lengths differ.
func MAE(target, measured []float64) float64 {
	if len(target) != len(measured) {
		panic("stats: MAE slices must have equal length")
	}
	if len(target) == 0 {
		return 0
	}
	var sum float64
	for i := range target {
		sum += math.Abs(target[i] - measured[i])
	}
	return sum / float64(len(target))
}

// Histogram bins samples into n equal-width buckets over [lo, hi] and
// returns per-bucket counts. Samples outside the range clamp into the edge
// buckets. It returns nil when n <= 0.
func Histogram(s []float64, lo, hi float64, n int) []int {
	if n <= 0 {
		return nil
	}
	counts := make([]int, n)
	if hi <= lo {
		counts[0] = len(s)
		return counts
	}
	w := (hi - lo) / float64(n)
	for _, v := range s {
		idx := int((v - lo) / w)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		counts[idx]++
	}
	return counts
}

// Median returns the 50th percentile of s.
func Median(s []float64) float64 { return Percentile(s, 50) }

// IsSorted reports whether s is in nondecreasing order.
func IsSorted(s []float64) bool { return sort.Float64sAreSorted(s) }
