package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEMDIdenticalIsZero(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := EMD(a, a); d != 0 {
		t.Fatalf("EMD(a, a) = %g, want 0", d)
	}
}

func TestEMDPointMasses(t *testing.T) {
	// Two point masses at distance d have EMD exactly d.
	a := []float64{0, 0, 0}
	b := []float64{2.5, 2.5, 2.5}
	if d := EMD(a, b); math.Abs(d-2.5) > 1e-12 {
		t.Fatalf("EMD(point masses) = %g, want 2.5", d)
	}
}

func TestEMDShiftEqualsOffset(t *testing.T) {
	// Shifting a distribution by c moves every unit of mass distance c.
	a := []float64{1, 2, 3, 7, 9}
	b := make([]float64, len(a))
	for i, v := range a {
		b[i] = v + 4
	}
	if d := EMD(a, b); math.Abs(d-4) > 1e-12 {
		t.Fatalf("EMD(shifted) = %g, want 4", d)
	}
}

func TestEMDSymmetry(t *testing.T) {
	a := []float64{0, 1, 2, 8}
	b := []float64{3, 3, 5}
	if d1, d2 := EMD(a, b), EMD(b, a); math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("EMD not symmetric: %g vs %g", d1, d2)
	}
}

func TestEMDKnownValue(t *testing.T) {
	// a = {0, 1}, b = {0, 2}: CDFs differ on [1, 2) by 0.5 => EMD = 0.5.
	a := []float64{0, 1}
	b := []float64{0, 2}
	if d := EMD(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("EMD = %g, want 0.5", d)
	}
}

func TestEMDDifferentSampleCounts(t *testing.T) {
	// Equal distributions represented with different sample counts.
	a := []float64{1, 2}
	b := []float64{1, 1, 2, 2}
	if d := EMD(a, b); d != 0 {
		t.Fatalf("EMD over re-weighted identical distributions = %g, want 0", d)
	}
}

func TestEMDEmptyCases(t *testing.T) {
	if d := EMD(nil, nil); d != 0 {
		t.Fatalf("EMD(nil, nil) = %g", d)
	}
	if d := EMD([]float64{1, 5}, nil); math.Abs(d-4) > 1e-12 {
		t.Fatalf("EMD(a, nil) = %g, want spread 4", d)
	}
}

func TestEMDTriangleInequalityProperty(t *testing.T) {
	rng := NewRNG(31)
	gen := func() []float64 {
		n := 3 + rng.IntN(20)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.Range(-10, 10)
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		a, b, c := gen(), gen(), gen()
		dab, dbc, dac := EMD(a, b), EMD(b, c), EMD(a, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle inequality violated: d(a,c)=%g > d(a,b)+d(b,c)=%g", dac, dab+dbc)
		}
	}
}

func TestEMDNonNegativeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return EMD(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedEMDBounds(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{10, 10, 10, 10}
	d := NormalizedEMD(a, b)
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("NormalizedEMD(max separation) = %g, want 1", d)
	}
	if d := NormalizedEMD(a, a); d != 0 {
		t.Fatalf("NormalizedEMD(identical) = %g, want 0", d)
	}
	if d := NormalizedEMD([]float64{0, 0}, []float64{0, 0}); d != 0 {
		t.Fatalf("NormalizedEMD(all zero) = %g, want 0", d)
	}
}

func TestNormalizedEMDScaleInvariance(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 3, 4}
	d1 := NormalizedEMD(a, b)
	a2 := []float64{10, 20, 30}
	b2 := []float64{20, 30, 40}
	d2 := NormalizedEMD(a2, b2)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("NormalizedEMD not scale invariant: %g vs %g", d1, d2)
	}
}

func TestKSDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := KSDistance(a, a); d != 0 {
		t.Fatalf("KS(a, a) = %g", d)
	}
	// Disjoint supports: KS = 1.
	b := []float64{10, 11, 12}
	if d := KSDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("KS(disjoint) = %g, want 1", d)
	}
	if d := KSDistance(a, nil); d != 1 {
		t.Fatalf("KS(a, empty) = %g, want 1", d)
	}
	if d := KSDistance(nil, nil); d != 0 {
		t.Fatalf("KS(empty, empty) = %g, want 0", d)
	}
}

func TestSortedVariantsMatchUnsorted(t *testing.T) {
	// EMDSorted/NormalizedEMDSorted/KSSorted over pre-sorted inputs must
	// equal the sorting entry points bit for bit — they are the same sweep,
	// minus the sort. This is the fast path internal/core's distance
	// function relies on.
	rng := NewRNG(47)
	for trial := 0; trial < 300; trial++ {
		n, m := 1+rng.IntN(40), 1+rng.IntN(40)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.Range(-20, 20)
		}
		for i := range b {
			b[i] = rng.Range(-20, 20)
		}
		as, bs := sortedCopy(a), sortedCopy(b)
		if got, want := EMDSorted(as, bs), EMD(a, b); got != want {
			t.Fatalf("EMDSorted = %g, EMD = %g", got, want)
		}
		if got, want := NormalizedEMDSorted(as, bs), NormalizedEMD(a, b); got != want {
			t.Fatalf("NormalizedEMDSorted = %g, NormalizedEMD = %g", got, want)
		}
		if got, want := KSSorted(as, bs), KSDistance(a, b); got != want {
			t.Fatalf("KSSorted = %g, KSDistance = %g", got, want)
		}
	}
	// Degenerate cases mirror the unsorted entry points.
	if d := EMDSorted(nil, nil); d != 0 {
		t.Fatalf("EMDSorted(nil, nil) = %g", d)
	}
	if d := EMDSorted([]float64{1, 5}, nil); math.Abs(d-4) > 1e-12 {
		t.Fatalf("EMDSorted(a, nil) = %g, want 4", d)
	}
	if d := KSSorted([]float64{1}, nil); d != 1 {
		t.Fatalf("KSSorted(a, nil) = %g, want 1", d)
	}
	if d := KSSorted(nil, nil); d != 0 {
		t.Fatalf("KSSorted(nil, nil) = %g, want 0", d)
	}
	if d := NormalizedEMDSorted(nil, nil); d != 0 {
		t.Fatalf("NormalizedEMDSorted(nil, nil) = %g, want 0", d)
	}
}

func TestECDFDistances(t *testing.T) {
	a := NewECDF([]float64{3, 1, 2})
	b := NewECDF([]float64{5, 1, 2})
	if got, want := a.EMDTo(b), EMD([]float64{1, 2, 3}, []float64{1, 2, 5}); got != want {
		t.Fatalf("ECDF.EMDTo = %g, want %g", got, want)
	}
	if got, want := a.NormalizedEMDTo(b), NormalizedEMD([]float64{1, 2, 3}, []float64{1, 2, 5}); got != want {
		t.Fatalf("ECDF.NormalizedEMDTo = %g, want %g", got, want)
	}
	if got, want := a.KSTo(b), KSDistance([]float64{1, 2, 3}, []float64{1, 2, 5}); got != want {
		t.Fatalf("ECDF.KSTo = %g, want %g", got, want)
	}
	if d := a.EMDTo(a); d != 0 {
		t.Fatalf("ECDF.EMDTo(self) = %g", d)
	}
}

func TestKSBoundedProperty(t *testing.T) {
	rng := NewRNG(33)
	for trial := 0; trial < 200; trial++ {
		n, m := 1+rng.IntN(30), 1+rng.IntN(30)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.Range(-5, 5)
		}
		for i := range b {
			b[i] = rng.Range(-5, 5)
		}
		d := KSDistance(a, b)
		if d < 0 || d > 1 {
			t.Fatalf("KS distance %g out of [0, 1]", d)
		}
	}
}
