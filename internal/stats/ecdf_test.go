package stats

import (
	"math"
	"testing"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 4})
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	if e.Min() != 1 || e.Max() != 4 {
		t.Fatalf("Min/Max = %g/%g", e.Min(), e.Max())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestECDFRightContinuityWithTies(t *testing.T) {
	e := NewECDF([]float64{2, 2, 2, 5})
	if got := e.At(2); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("At(2) with ties = %g, want 0.75", got)
	}
	if got := e.At(1.999); got != 0 {
		t.Fatalf("At(just below tie) = %g, want 0", got)
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if q := e.Quantile(0.5); q != 50 {
		t.Fatalf("median = %g, want 50", q)
	}
	if q := e.Quantile(0); q != 10 {
		t.Fatalf("q0 = %g, want 10", q)
	}
	if q := e.Quantile(1); q != 100 {
		t.Fatalf("q1 = %g, want 100", q)
	}
	if q := e.Quantile(-1); q != 10 {
		t.Fatalf("clamped q = %g", q)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 || e.Quantile(0.5) != 0 || e.Min() != 0 || e.Max() != 0 {
		t.Fatal("empty eCDF must return zeros")
	}
	if e.String() != "ECDF(empty)" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{5, 1, 3})
	xs, ys := e.Points()
	wantX := []float64{1, 3, 5}
	wantY := []float64{1.0 / 3, 2.0 / 3, 1}
	for i := range wantX {
		if xs[i] != wantX[i] || math.Abs(ys[i]-wantY[i]) > 1e-12 {
			t.Fatalf("Points()[%d] = (%g, %g), want (%g, %g)", i, xs[i], ys[i], wantX[i], wantY[i])
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e := NewECDF(in)
	in[0] = 999
	if e.Max() == 999 {
		t.Fatal("ECDF aliases caller slice")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	rng := NewRNG(41)
	s := make([]float64, 200)
	for i := range s {
		s[i] = rng.Range(-100, 100)
	}
	e := NewECDF(s)
	prev := -1.0
	for x := -110.0; x <= 110; x += 0.7 {
		v := e.At(x)
		if v < prev {
			t.Fatalf("eCDF decreased at x=%g: %g < %g", x, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("eCDF out of [0,1]: %g", v)
		}
		prev = v
	}
}

func TestDescribeHelpers(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(s); m != 5 {
		t.Fatalf("Mean = %g", m)
	}
	if v := Variance(s); v != 4 {
		t.Fatalf("Variance = %g", v)
	}
	if sd := Std(s); sd != 2 {
		t.Fatalf("Std = %g", sd)
	}
	if med := Median(s); math.Abs(med-4.5) > 1e-12 {
		t.Fatalf("Median = %g", med)
	}
	if p := Percentile(s, 0); p != 2 {
		t.Fatalf("P0 = %g", p)
	}
	if p := Percentile(s, 100); p != 9 {
		t.Fatalf("P100 = %g", p)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty-slice descriptive stats must return 0")
	}
	if Percentile([]float64{7}, 33) != 7 {
		t.Fatal("single-element percentile")
	}
}

func TestErrorMetrics(t *testing.T) {
	if e := AbsPercentError(2, 1); e != 0.5 {
		t.Fatalf("AbsPercentError = %g", e)
	}
	if e := AbsPercentError(0, 0); e != 0 {
		t.Fatalf("APE(0,0) = %g", e)
	}
	if e := AbsPercentError(0, 1); e != 1 {
		t.Fatalf("APE(0,1) = %g", e)
	}
	if m := MAPE([]float64{1, 2}, []float64{2, 1}); m != 0.75 {
		t.Fatalf("MAPE = %g", m)
	}
	if m := MAE([]float64{1, 5}, []float64{2, 3}); m != 1.5 {
		t.Fatalf("MAE = %g", m)
	}
	if MAPE(nil, nil) != 0 || MAE(nil, nil) != 0 {
		t.Fatal("empty MAPE/MAE must be 0")
	}
}

func TestMAPEPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MAPE with mismatched lengths did not panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	s := []float64{0.1, 0.2, 0.5, 0.9, 1.5, -3}
	h := Histogram(s, 0, 1, 2)
	// Buckets: [0, 0.5) and [0.5, 1]; out-of-range clamps to edges.
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("Histogram = %v", h)
	}
	if Histogram(s, 0, 1, 0) != nil {
		t.Fatal("n<=0 must return nil")
	}
	h2 := Histogram(s, 5, 5, 3) // degenerate range
	if h2[0] != len(s) {
		t.Fatalf("degenerate-range histogram = %v", h2)
	}
}
