package stats

import (
	"fmt"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a set of
// samples. The paper's profiles are distributions of performance-counter
// samples; matching them (rather than just their means) is Datamime's
// central error-model idea (§III-C).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an eCDF from samples. The input slice is copied; it may be
// empty, in which case every query returns zero.
func NewECDF(samples []float64) *ECDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the number of underlying samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X <= x), the fraction of samples at or below x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[idx] >= x; advance
	// past equal values so the CDF is right-continuous (<= semantics).
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile for q in [0, 1] using the nearest-rank
// method. Out-of-range q is clamped.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	q = Clamp(q, 0, 1)
	idx := int(q*float64(len(e.sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Min returns the smallest sample (0 when empty).
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[0]
}

// Max returns the largest sample (0 when empty).
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// Sorted returns the underlying sorted samples. The returned slice must not
// be modified.
func (e *ECDF) Sorted() []float64 { return e.sorted }

// Points returns (x, y) pairs suitable for plotting the eCDF: for each
// sample in order, the cumulative fraction at that sample. The harness uses
// this to emit the series behind Figs. 4 and 8.
func (e *ECDF) Points() (xs, ys []float64) {
	n := len(e.sorted)
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i, v := range e.sorted {
		xs[i] = v
		ys[i] = float64(i+1) / float64(n)
	}
	return xs, ys
}

// EMDTo returns the Earth Mover's Distance between this eCDF and another,
// reusing both sides' sorted sample arrays (no allocation, no re-sort) —
// the fast path for comparing one fixed distribution against many.
func (e *ECDF) EMDTo(o *ECDF) float64 { return EMDSorted(e.sorted, o.sorted) }

// NormalizedEMDTo is EMDTo with the paper's x-axis normalization (see
// NormalizedEMD).
func (e *ECDF) NormalizedEMDTo(o *ECDF) float64 {
	return NormalizedEMDSorted(e.sorted, o.sorted)
}

// KSTo returns the Kolmogorov–Smirnov statistic between this eCDF and
// another, reusing both sides' sorted sample arrays.
func (e *ECDF) KSTo(o *ECDF) float64 { return KSSorted(e.sorted, o.sorted) }

func (e *ECDF) String() string {
	if len(e.sorted) == 0 {
		return "ECDF(empty)"
	}
	return fmt.Sprintf("ECDF(n=%d, min=%.4g, p50=%.4g, max=%.4g)",
		len(e.sorted), e.Min(), e.Quantile(0.5), e.Max())
}
