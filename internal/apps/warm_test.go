// Package apps_test holds cross-application integration tests: properties
// every application substrate must share (warmable datasets, trace
// emission consistency) so the profiler treats them uniformly.
package apps_test

import (
	"testing"

	"datamime/internal/apps/kvstore"
	"datamime/internal/apps/masstree"
	"datamime/internal/apps/nn"
	"datamime/internal/apps/searchidx"
	"datamime/internal/apps/silodb"
	"datamime/internal/stats"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

// warmServer couples a constructor with a rough expected resident size.
type warmCase struct {
	name     string
	server   workload.Server
	minBytes int
}

func warmCases(t *testing.T) []warmCase {
	t.Helper()
	kv := kvstore.New(kvstore.Config{
		NumKeys:   2_000,
		KeySize:   stats.Constant{V: 24},
		ValueSize: stats.Constant{V: 200},
		GetRatio:  0.9,
	}, trace.NewCodeLayout(), 1)
	silo := silodb.New(silodb.Config{
		Mode: silodb.ModeTPCC, Warehouses: 1,
		TxMix: [5]float64{1, 1, 1, 1, 1},
	}, trace.NewCodeLayout(), 2)
	xap := searchidx.New(searchidx.Config{
		Corpus: searchidx.CorpusConfig{
			NumDocs: 1_000, NumTerms: 400,
			DocLength: stats.Constant{V: 500},
			DFSkew:    0.9, MaxDF: 0.2,
		},
		QuerySkew: 0.5, QueryMaxDF: 0.1, TermsPerQuery: 2, TopK: 4,
	}, trace.NewCodeLayout(), 3)
	mt := masstree.New(masstree.Config{
		NumKeys:   2_000,
		ValueSize: stats.Constant{V: 100},
		GetRatio:  0.5,
	}, trace.NewCodeLayout(), 4)
	dnn := nn.New(nn.NetSpec{
		InputC: 3, InputHW: 8,
		Layers:  []nn.LayerSpec{{Kind: nn.Conv3x3, OutChannels: 8}, {Kind: nn.FC}},
		Classes: 10,
	}, trace.NewCodeLayout(), 5)
	return []warmCase{
		{"kvstore", kv, 2_000 * 200},
		{"silodb", silo, 100_000},
		{"searchidx", xap, 1_000 * 500},
		{"masstree", mt, 2_000 * 100},
		{"nn", dnn, dnn.Model().WeightBytes()},
	}
}

// TestEveryAppIsWarmable: all five substrates implement Warmable and their
// warm pass touches at least the dataset's resident bytes.
func TestEveryAppIsWarmable(t *testing.T) {
	for _, c := range warmCases(t) {
		w, ok := c.server.(workload.Warmable)
		if !ok {
			t.Fatalf("%s does not implement Warmable", c.name)
		}
		rec := trace.NewRecorder()
		w.WarmDataset(rec)
		if rec.LoadBytes < c.minBytes {
			t.Fatalf("%s warm pass loaded %d bytes, want >= %d", c.name, rec.LoadBytes, c.minBytes)
		}
	}
}

// TestWarmThenServeHitsCaches: after warming into a recorder-backed cache
// stand-in (the machine), requests should see warm caches — validated by
// comparing traffic against a cold run at the workload level in the
// profile package; here we just assert warming is idempotent and safe to
// repeat.
func TestWarmIsRepeatable(t *testing.T) {
	for _, c := range warmCases(t) {
		w := c.server.(workload.Warmable)
		r1 := trace.NewRecorder()
		w.WarmDataset(r1)
		r2 := trace.NewRecorder()
		w.WarmDataset(r2)
		if r1.LoadBytes != r2.LoadBytes {
			t.Fatalf("%s warm passes differ: %d vs %d bytes", c.name, r1.LoadBytes, r2.LoadBytes)
		}
	}
}

// TestEveryAppReportsMessageSizes: the networked configuration needs sane
// request/response sizes from every substrate.
func TestEveryAppReportsMessageSizes(t *testing.T) {
	rng := stats.NewRNG(9)
	for _, c := range warmCases(t) {
		sizer, ok := c.server.(workload.Sizer)
		if !ok {
			t.Fatalf("%s does not implement Sizer", c.name)
		}
		var null trace.Null
		c.server.Handle(null, rng)
		req, resp := sizer.LastMessageSizes()
		if req <= 0 || resp <= 0 {
			t.Fatalf("%s message sizes %d/%d", c.name, req, resp)
		}
	}
}

// TestEveryAppEmitsAllEventKinds: each substrate's request path must
// exercise loads, instruction blocks, and branches (stores may legitimately
// be absent from pure-read paths, so only the three universal kinds are
// required).
func TestEveryAppEmitsAllEventKinds(t *testing.T) {
	rng := stats.NewRNG(10)
	for _, c := range warmCases(t) {
		rec := trace.NewRecorder()
		for i := 0; i < 20; i++ {
			c.server.Handle(rec, rng)
		}
		if rec.Loads == 0 || rec.ExecCalls == 0 || rec.Branches == 0 {
			t.Fatalf("%s: loads=%d execs=%d branches=%d",
				c.name, rec.Loads, rec.ExecCalls, rec.Branches)
		}
	}
}
