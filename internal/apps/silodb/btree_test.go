package silodb

import (
	"sort"
	"testing"
	"testing/quick"

	"datamime/internal/memsim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

func newTestTree() *BTree {
	layout := trace.NewCodeLayout()
	return NewBTree(memsim.NewHeap(), layout.Region("btree", 4096))
}

func TestBTreeInsertLookup(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(null, i*7%1000, i)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		v, ok := tr.Lookup(null, i)
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		_ = v
	}
	if _, ok := tr.Lookup(null, 5000); ok {
		t.Fatal("absent key found")
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeReplace(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	tr.Insert(null, 5, 100)
	tr.Insert(null, 5, 200)
	if tr.Len() != 1 {
		t.Fatalf("replace changed Len to %d", tr.Len())
	}
	v, _ := tr.Lookup(null, 5)
	if v != 200 {
		t.Fatalf("Lookup = %d, want 200", v)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	for i := uint64(0); i < 500; i++ {
		tr.Insert(null, i, i)
	}
	for i := uint64(0); i < 500; i += 2 {
		if !tr.Delete(null, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Delete(null, 0) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 500; i++ {
		_, ok := tr.Lookup(null, i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v, want %v", i, ok, want)
		}
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeScanInOrder(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	rng := stats.NewRNG(1)
	keys := rng.Perm(2000)
	for _, k := range keys {
		tr.Insert(null, uint64(k), uint64(k)*2)
	}
	var got []uint64
	n := tr.Scan(null, 100, 50, func(k, v uint64) bool {
		got = append(got, k)
		if v != k*2 {
			t.Fatalf("value mismatch at %d: %d", k, v)
		}
		return true
	})
	if n != 50 || len(got) != 50 {
		t.Fatalf("scan visited %d", n)
	}
	if got[0] != 100 {
		t.Fatalf("scan start = %d, want 100", got[0])
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
	// Early stop.
	n = tr.Scan(null, 0, 100, func(k, v uint64) bool { return k < 5 })
	if n != 7-1 {
		// visits 0..5 then stops at k=5? fn(5) returns false after counting.
		// Accept the exact semantic: counted visits include the stopping one.
		if n < 2 || n > 10 {
			t.Fatalf("early-stop scan visited %d", n)
		}
	}
}

func TestBTreeMin(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	if _, _, ok := tr.Min(null); ok {
		t.Fatal("Min of empty tree")
	}
	for _, k := range []uint64{50, 10, 90, 30} {
		tr.Insert(null, k, k+1)
	}
	k, v, ok := tr.Min(null)
	if !ok || k != 10 || v != 11 {
		t.Fatalf("Min = (%d, %d, %v)", k, v, ok)
	}
}

func TestBTreeRandomizedAgainstMap(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	ref := make(map[uint64]uint64)
	rng := stats.NewRNG(42)
	for op := 0; op < 30000; op++ {
		k := uint64(rng.IntN(3000))
		switch rng.IntN(3) {
		case 0, 1:
			v := rng.Uint64()
			tr.Insert(null, k, v)
			ref[k] = v
		case 2:
			_, inRef := ref[k]
			if got := tr.Delete(null, k); got != inRef {
				t.Fatalf("Delete(%d) = %v, ref %v", k, got, inRef)
			}
			delete(ref, k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Lookup(null, k)
		if !ok || got != v {
			t.Fatalf("Lookup(%d) = (%d, %v), want %d", k, got, ok, v)
		}
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeOrderedInsertProperty(t *testing.T) {
	// Property: any insertion sequence yields a tree that scans in sorted
	// order and preserves all keys.
	f := func(raw []uint16) bool {
		tr := newTestTree()
		var null trace.Null
		want := make(map[uint64]bool)
		for _, r := range raw {
			tr.Insert(null, uint64(r), 1)
			want[uint64(r)] = true
		}
		if tr.Len() != len(want) {
			return false
		}
		var prev int64 = -1
		okOrder := true
		tr.Scan(null, 0, len(raw)+1, func(k, v uint64) bool {
			if int64(k) <= prev {
				okOrder = false
			}
			prev = int64(k)
			delete(want, k)
			return true
		})
		return okOrder && len(want) == 0 && tr.check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeEmitsTraversalTraffic(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	for i := uint64(0); i < 10000; i++ {
		tr.Insert(null, i, i)
	}
	rec := trace.NewRecorder()
	tr.Lookup(rec, 5000)
	// Depth of a 10k-key tree with order 16 is >= 3: at least 3 node loads.
	if rec.Loads < 3 {
		t.Fatalf("lookup emitted %d node loads", rec.Loads)
	}
	if rec.Branches == 0 {
		t.Fatal("lookup emitted no search branches")
	}
}
