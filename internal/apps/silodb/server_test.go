package silodb

import (
	"testing"

	"datamime/internal/memsim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

func tpccConfig(w int) Config {
	return Config{
		Mode:       ModeTPCC,
		Warehouses: w,
		TxMix:      [5]float64{0.45, 0.43, 0.04, 0.04, 0.04},
	}
}

func TestTableCRUD(t *testing.T) {
	layout := trace.NewCodeLayout()
	tb := NewTable("t", 64, memsim.NewHeap(), layout.Region("code", 4096))
	var null trace.Null
	id := tb.Insert(null, 10, 5, 7)
	_ = id
	f1, f2, ok := tb.Read(null, 10)
	if !ok || f1 != 5 || f2 != 7 {
		t.Fatalf("Read = (%d, %d, %v)", f1, f2, ok)
	}
	if !tb.Update(null, 10, 50, 70) {
		t.Fatal("Update failed")
	}
	f1, _, _ = tb.Read(null, 10)
	if f1 != 50 {
		t.Fatalf("after Update f1 = %d", f1)
	}
	if !tb.Modify(null, 10, func(a, b int64) (int64, int64) { return a + 1, b }) {
		t.Fatal("Modify failed")
	}
	f1, _, _ = tb.Read(null, 10)
	if f1 != 51 {
		t.Fatalf("after Modify f1 = %d", f1)
	}
	if !tb.Delete(null, 10) {
		t.Fatal("Delete failed")
	}
	if _, _, ok := tb.Read(null, 10); ok {
		t.Fatal("deleted row readable")
	}
	if tb.Update(null, 10, 0, 0) || tb.Modify(null, 10, func(a, b int64) (int64, int64) { return a, b }) {
		t.Fatal("Update/Modify on absent row succeeded")
	}
}

func TestTableRowSlotReuse(t *testing.T) {
	layout := trace.NewCodeLayout()
	tb := NewTable("t", 64, memsim.NewHeap(), layout.Region("code", 4096))
	var null trace.Null
	for i := uint64(0); i < 100; i++ {
		tb.Insert(null, i, 0, 0)
	}
	slots := len(tb.rows)
	for i := uint64(0); i < 50; i++ {
		tb.Delete(null, i)
	}
	for i := uint64(200); i < 250; i++ {
		tb.Insert(null, i, 0, 0)
	}
	if len(tb.rows) != slots {
		t.Fatalf("row slots grew %d -> %d despite free list", slots, len(tb.rows))
	}
}

func TestRedoLogWraps(t *testing.T) {
	layout := trace.NewCodeLayout()
	log := NewRedoLog(memsim.NewHeap(), 1024, layout.Region("log", 1024))
	rec := trace.NewRecorder()
	for i := 0; i < 10; i++ {
		log.Append(rec, 300)
	}
	if log.Commits() != 10 {
		t.Fatalf("Commits = %d", log.Commits())
	}
	if rec.StoreBytes != 3000 {
		t.Fatalf("log stores %d bytes, want 3000", rec.StoreBytes)
	}
	log.Append(rec, 0) // degenerate size still commits a minimal record
	if log.Commits() != 11 {
		t.Fatal("degenerate append not committed")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := tpccConfig(2).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := BiddingTarget().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Mode: ModeTPCC, Warehouses: 0, TxMix: [5]float64{1, 0, 0, 0, 0}},
		{Mode: ModeTPCC, Warehouses: 1},                                    // zero mix
		{Mode: ModeTPCC, Warehouses: 1, TxMix: [5]float64{-1, 2, 0, 0, 0}}, // negative
		{Mode: ModeBidding, BidItems: 0, BidRowBytes: 64},
		{Mode: ModeBidding, BidItems: 10, BidRowBytes: 0},
		{Mode: ModeBidding, BidItems: 10, BidRowBytes: 64, BidSkew: -1},
		{Mode: Mode(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
}

func TestTPCCPopulation(t *testing.T) {
	s := New(tpccConfig(2), trace.NewCodeLayout(), 1)
	if s.warehouse.Len() != 2 {
		t.Fatalf("warehouses = %d", s.warehouse.Len())
	}
	if s.district.Len() != 2*districtsPerWarehouse {
		t.Fatalf("districts = %d", s.district.Len())
	}
	if s.customer.Len() != 2*districtsPerWarehouse*customersPerDistrict {
		t.Fatalf("customers = %d", s.customer.Len())
	}
	if s.stock.Len() != 2*itemCount {
		t.Fatalf("stock = %d", s.stock.Len())
	}
	if s.item.Len() != itemCount {
		t.Fatalf("items = %d", s.item.Len())
	}
	if s.orders.Len() == 0 || s.orderLines.Len() == 0 || s.newOrders.Len() == 0 {
		t.Fatal("order history not populated")
	}
}

func TestWarehousesScaleFootprint(t *testing.T) {
	// Footprint has a fixed part (items, redo log), so measure the
	// per-warehouse marginal growth over a wide scale.
	small := New(tpccConfig(1), trace.NewCodeLayout(), 1)
	big := New(tpccConfig(12), trace.NewCodeLayout(), 1)
	if big.Heap().LiveBytes() < 4*small.Heap().LiveBytes() {
		t.Fatalf("footprint scaling too weak: %d -> %d bytes",
			small.Heap().LiveBytes(), big.Heap().LiveBytes())
	}
}

func TestTransactionsExecute(t *testing.T) {
	s := New(tpccConfig(2), trace.NewCodeLayout(), 2)
	rng := stats.NewRNG(3)
	var null trace.Null
	for i := 0; i < 3000; i++ {
		s.Handle(null, rng)
	}
	counts := s.TxCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3000 {
		t.Fatalf("executed %d transactions", total)
	}
	// Mix roughly honored: new-order and payment dominate.
	if counts[TxNewOrder] < 1100 || counts[TxPayment] < 1000 {
		t.Fatalf("mix skewed: %v", counts)
	}
	for tx := TxDelivery; tx <= TxStockLevel; tx++ {
		if counts[tx] == 0 {
			t.Fatalf("%s never executed", tx)
		}
	}
	if s.Log().Commits() == 0 {
		t.Fatal("no commits logged")
	}
}

func TestMixShiftsExecution(t *testing.T) {
	cfg := tpccConfig(1)
	cfg.TxMix = [5]float64{0, 0, 0, 1, 0} // order-status only
	s := New(cfg, trace.NewCodeLayout(), 4)
	rng := stats.NewRNG(5)
	var null trace.Null
	for i := 0; i < 500; i++ {
		s.Handle(null, rng)
	}
	counts := s.TxCounts()
	if counts[TxOrderStatus] != 500 {
		t.Fatalf("pure order-status mix executed %v", counts)
	}
}

func TestNewOrderGrowsTables(t *testing.T) {
	cfg := tpccConfig(1)
	cfg.TxMix = [5]float64{1, 0, 0, 0, 0}
	s := New(cfg, trace.NewCodeLayout(), 6)
	rng := stats.NewRNG(7)
	var null trace.Null
	before := s.orders.Len()
	for i := 0; i < 200; i++ {
		s.Handle(null, rng)
	}
	if s.orders.Len() != before+200 {
		t.Fatalf("orders grew %d -> %d", before, s.orders.Len())
	}
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	cfg := tpccConfig(1)
	cfg.TxMix = [5]float64{0, 0, 1, 0, 0}
	s := New(cfg, trace.NewCodeLayout(), 8)
	rng := stats.NewRNG(9)
	var null trace.Null
	before := s.newOrders.Len()
	for i := 0; i < 20; i++ {
		s.Handle(null, rng)
	}
	if s.newOrders.Len() >= before {
		t.Fatalf("delivery did not drain new orders: %d -> %d", before, s.newOrders.Len())
	}
}

func TestBiddingMode(t *testing.T) {
	cfg := Config{Mode: ModeBidding, BidItems: 5000, BidRowBytes: 128}
	s := New(cfg, trace.NewCodeLayout(), 10)
	rng := stats.NewRNG(11)
	var null trace.Null
	for i := 0; i < 5000; i++ {
		s.Handle(null, rng)
	}
	txs, wins := s.BidStats()
	if txs != 5000 {
		t.Fatalf("bid txs = %d", txs)
	}
	if wins == 0 || wins == txs {
		t.Fatalf("bids won = %d of %d — expected a mix of wins and losses", wins, txs)
	}
}

func TestBiddingEmitsRowTraffic(t *testing.T) {
	cfg := Config{Mode: ModeBidding, BidItems: 2000, BidRowBytes: 256}
	s := New(cfg, trace.NewCodeLayout(), 12)
	rng := stats.NewRNG(13)
	rec := trace.NewRecorder()
	for i := 0; i < 100; i++ {
		s.Handle(rec, rng)
	}
	if rec.LoadBytes < 100*256 {
		t.Fatalf("bid row loads too small: %d bytes", rec.LoadBytes)
	}
	if !rec.DistinctRegions["silo.tx_bid"] {
		t.Fatal("bid code region not executed")
	}
}

func TestServerDeterministic(t *testing.T) {
	run := func() [5]int {
		s := New(tpccConfig(2), trace.NewCodeLayout(), 20)
		rng := stats.NewRNG(21)
		var null trace.Null
		for i := 0; i < 1000; i++ {
			s.Handle(null, rng)
		}
		return s.TxCounts()
	}
	if run() != run() {
		t.Fatal("same-seed runs diverged")
	}
}

func TestServerPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{Mode: ModeTPCC}, trace.NewCodeLayout(), 0)
}

func TestTxTypeString(t *testing.T) {
	if TxNewOrder.String() != "new_order" || TxStockLevel.String() != "stock_level" {
		t.Fatal("TxType names wrong")
	}
	if TxType(99).String() == "" {
		t.Fatal("unknown TxType empty")
	}
}
