package silodb

import (
	"testing"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

// TestPaymentConservesMoney: warehouse YTD gains exactly what customer
// balances lose across any run of payment transactions.
func TestPaymentConservesMoney(t *testing.T) {
	cfg := tpccConfig(2)
	cfg.TxMix = [5]float64{0, 1, 0, 0, 0} // payments only
	s := New(cfg, trace.NewCodeLayout(), 41)
	rng := stats.NewRNG(42)
	var null trace.Null

	sumWarehouse := func() int64 {
		var total int64
		for w := 0; w < cfg.Warehouses; w++ {
			f1, _, ok := s.warehouse.Read(null, uint64(w))
			if !ok {
				t.Fatalf("warehouse %d missing", w)
			}
			total += f1
		}
		return total
	}
	sumCustomers := func() int64 {
		var total int64
		for w := 0; w < cfg.Warehouses; w++ {
			for d := 0; d < districtsPerWarehouse; d++ {
				for c := 0; c < customersPerDistrict; c++ {
					f1, _, ok := s.customer.Read(null, wdKey(w, d, uint64(c)))
					if !ok {
						t.Fatal("customer missing")
					}
					total += f1
				}
			}
		}
		return total
	}

	w0, c0 := sumWarehouse(), sumCustomers()
	for i := 0; i < 500; i++ {
		s.Handle(null, rng)
	}
	wGain := sumWarehouse() - w0
	cLoss := c0 - sumCustomers()
	if wGain <= 0 {
		t.Fatal("payments moved no money")
	}
	if wGain != cLoss {
		t.Fatalf("money not conserved: warehouses +%d, customers -%d", wGain, cLoss)
	}
	if s.history.Len() != 500 {
		t.Fatalf("history rows = %d, want 500", s.history.Len())
	}
}

// TestNewOrderConsistency: after N new-order transactions, order and
// order-line growth are consistent (5–15 lines per order) and new_order
// rows accumulate.
func TestNewOrderConsistency(t *testing.T) {
	cfg := tpccConfig(1)
	cfg.TxMix = [5]float64{1, 0, 0, 0, 0}
	s := New(cfg, trace.NewCodeLayout(), 43)
	rng := stats.NewRNG(44)
	var null trace.Null
	ordersBefore := s.orders.Len()
	linesBefore := s.orderLines.Len()
	pendingBefore := s.newOrders.Len()
	const n = 300
	for i := 0; i < n; i++ {
		s.Handle(null, rng)
	}
	dOrders := s.orders.Len() - ordersBefore
	dLines := s.orderLines.Len() - linesBefore
	if dOrders != n {
		t.Fatalf("orders grew %d, want %d", dOrders, n)
	}
	if dLines < 5*n || dLines > 15*n {
		t.Fatalf("order lines grew %d for %d orders", dLines, n)
	}
	if s.newOrders.Len()-pendingBefore != n {
		t.Fatal("new_order rows do not track new orders")
	}
}

// TestStockLevelIsReadOnly: stock-level transactions must not modify any
// table or append to the redo log.
func TestStockLevelIsReadOnly(t *testing.T) {
	cfg := tpccConfig(1)
	cfg.TxMix = [5]float64{0, 0, 0, 0, 1}
	s := New(cfg, trace.NewCodeLayout(), 45)
	rng := stats.NewRNG(46)
	var null trace.Null
	commitsBefore := s.Log().Commits()
	rowsBefore := s.orders.Len() + s.orderLines.Len() + s.stock.Len()
	for i := 0; i < 200; i++ {
		s.Handle(null, rng)
	}
	if s.orders.Len()+s.orderLines.Len()+s.stock.Len() != rowsBefore {
		t.Fatal("read-only transaction modified tables")
	}
	if s.Log().Commits() != commitsBefore {
		t.Fatal("read-only transaction wrote the redo log")
	}
}

// TestBidMonotone: the winning bid for any item never decreases.
func TestBidMonotone(t *testing.T) {
	cfg := Config{Mode: ModeBidding, BidItems: 50, BidRowBytes: 128}
	s := New(cfg, trace.NewCodeLayout(), 47)
	rng := stats.NewRNG(48)
	var null trace.Null
	prev := make(map[uint64]int64)
	for i := uint64(0); i < 50; i++ {
		f1, _, _ := s.bids.Read(null, i)
		prev[i] = f1
	}
	for round := 0; round < 20; round++ {
		for i := 0; i < 200; i++ {
			s.Handle(null, rng)
		}
		for i := uint64(0); i < 50; i++ {
			f1, _, _ := s.bids.Read(null, i)
			if f1 < prev[i] {
				t.Fatalf("item %d bid decreased: %d -> %d", i, prev[i], f1)
			}
			prev[i] = f1
		}
	}
}

// TestWarmDatasetCoverage: the warm pass must touch every table's resident
// bytes.
func TestWarmDatasetCoverage(t *testing.T) {
	s := New(tpccConfig(1), trace.NewCodeLayout(), 49)
	rec := trace.NewRecorder()
	s.WarmDataset(rec)
	// At least the stock table's rows (5000 × 64 B) plus customers
	// (1000 × 256 B) must stream through.
	if rec.LoadBytes < 5000*64+1000*256 {
		t.Fatalf("warm pass loaded only %d bytes", rec.LoadBytes)
	}
	bidding := New(BiddingTarget(), trace.NewCodeLayout(), 50)
	rec2 := trace.NewRecorder()
	bidding.WarmDataset(rec2)
	if rec2.LoadBytes < BiddingTarget().BidItems*BiddingTarget().BidRowBytes {
		t.Fatalf("bidding warm pass loaded only %d bytes", rec2.LoadBytes)
	}
}
