package silodb

import (
	"fmt"

	"datamime/internal/memsim"
	"datamime/internal/trace"
)

// Table couples a B+-tree primary index with simulated row storage and the
// small amount of real per-row state the transactions need.
type Table struct {
	name    string
	rowSize int
	index   *BTree
	heap    *memsim.Heap
	rows    []rowState
	free    []uint32
}

// rowState is the live, Go-side state of one row: its simulated address
// plus the mutable fields transactions actually read and write.
type rowState struct {
	addr uint64
	// f1/f2 are generic numeric fields: stock quantity, customer balance,
	// current bid, next order id — whatever the table's role needs.
	f1 int64
	f2 int64
	ok bool
}

// NewTable builds an empty table.
func NewTable(name string, rowSize int, heap *memsim.Heap, treeCode *trace.CodeRegion) *Table {
	if rowSize <= 0 {
		panic(fmt.Sprintf("silodb: table %q needs positive row size", name))
	}
	return &Table{
		name:    name,
		rowSize: rowSize,
		index:   NewBTree(heap, treeCode),
		heap:    heap,
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of rows.
func (t *Table) Len() int { return t.index.Len() }

// Insert adds a row for key with initial field values, returning its row id.
func (t *Table) Insert(col trace.Collector, key uint64, f1, f2 int64) uint32 {
	var id uint32
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[id] = rowState{addr: t.heap.Alloc(t.rowSize), f1: f1, f2: f2, ok: true}
	} else {
		t.rows = append(t.rows, rowState{addr: t.heap.Alloc(t.rowSize), f1: f1, f2: f2, ok: true})
		id = uint32(len(t.rows) - 1)
	}
	t.index.Insert(col, key, uint64(id))
	col.Store(t.rows[id].addr, t.rowSize)
	return id
}

// Read looks up key and reads the row, returning its fields.
func (t *Table) Read(col trace.Collector, key uint64) (f1, f2 int64, ok bool) {
	rid, found := t.index.Lookup(col, key)
	if !found {
		return 0, 0, false
	}
	r := &t.rows[rid]
	col.Load(r.addr, t.rowSize)
	return r.f1, r.f2, true
}

// Update looks up key and overwrites its fields, reporting success.
func (t *Table) Update(col trace.Collector, key uint64, f1, f2 int64) bool {
	rid, found := t.index.Lookup(col, key)
	if !found {
		return false
	}
	r := &t.rows[rid]
	col.Load(r.addr, t.rowSize)
	r.f1, r.f2 = f1, f2
	col.Store(r.addr, t.rowSize)
	return true
}

// Modify applies fn to the row's fields in place (read-modify-write).
func (t *Table) Modify(col trace.Collector, key uint64, fn func(f1, f2 int64) (int64, int64)) bool {
	rid, found := t.index.Lookup(col, key)
	if !found {
		return false
	}
	r := &t.rows[rid]
	col.Load(r.addr, t.rowSize)
	r.f1, r.f2 = fn(r.f1, r.f2)
	col.Store(r.addr, t.rowSize)
	return true
}

// Delete removes key's row.
func (t *Table) Delete(col trace.Collector, key uint64) bool {
	rid, found := t.index.Lookup(col, key)
	if !found {
		return false
	}
	if !t.index.Delete(col, key) {
		return false
	}
	r := &t.rows[rid]
	t.heap.Free(r.addr, t.rowSize)
	r.ok = false
	t.free = append(t.free, uint32(rid))
	return true
}

// Scan forwards to the index scan, additionally loading each visited row.
func (t *Table) Scan(col trace.Collector, from uint64, limit int, fn func(key uint64, f1, f2 int64) bool) int {
	return t.index.Scan(col, from, limit, func(key, rid uint64) bool {
		r := &t.rows[rid]
		col.Load(r.addr, t.rowSize)
		return fn(key, r.f1, r.f2)
	})
}

// Min returns the smallest key's row.
func (t *Table) Min(col trace.Collector) (key uint64, f1, f2 int64, ok bool) {
	k, rid, found := t.index.Min(col)
	if !found {
		return 0, 0, 0, false
	}
	r := &t.rows[rid]
	col.Load(r.addr, t.rowSize)
	return k, r.f1, r.f2, true
}

// WarmScan touches every row and index node of the table once.
func (t *Table) WarmScan(col trace.Collector) {
	t.index.Scan(col, 0, t.index.Len()+1, func(key, rid uint64) bool {
		col.Load(t.rows[rid].addr, t.rowSize)
		return true
	})
}

// RedoLog is the commit log: an append-only circular buffer of simulated
// storage that every committing transaction writes sequentially.
type RedoLog struct {
	addr  uint64
	size  int
	off   int
	code  *trace.CodeRegion
	count int
}

// NewRedoLog allocates a log buffer of the given size.
func NewRedoLog(heap *memsim.Heap, size int, code *trace.CodeRegion) *RedoLog {
	if size <= 0 {
		panic("silodb: redo log needs positive size")
	}
	return &RedoLog{addr: heap.Alloc(size), size: size, code: code}
}

// Append commits n bytes of redo records.
func (l *RedoLog) Append(col trace.Collector, n int) {
	if n <= 0 {
		n = 16
	}
	col.Exec(l.code, 420+n/8)
	for n > 0 {
		chunk := n
		if room := l.size - l.off; chunk > room {
			chunk = room
		}
		col.Store(l.addr+uint64(l.off), chunk)
		l.off = (l.off + chunk) % l.size
		n -= chunk
	}
	l.count++
}

// Commits returns the number of appended commit records.
func (l *RedoLog) Commits() int { return l.count }
