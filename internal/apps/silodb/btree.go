// Package silodb implements the silo-like in-memory transactional database
// used by the silo workload: B+-tree indexes over simulated-address rows,
// TPC-C-style tables and transactions (new order, payment, delivery, order
// status, stock level), the synthetic bidding workload the paper uses as
// silo's target dataset, an OCC-style commit with a redo log, and full
// trace emission for every index traversal, row access, and data-dependent
// branch.
package silodb

import (
	"fmt"

	"datamime/internal/memsim"
	"datamime/internal/trace"
)

// btreeOrder is the fan-out of the B+ tree. 16 keys per 128-byte-ish node
// mirrors cache-conscious main-memory trees.
const btreeOrder = 16

// nodeBytes is the simulated size of one tree node (keys + pointers).
const nodeBytes = 2 * trace.LineSize

// bnode is a B+-tree node. Leaves hold values; interior nodes hold
// children. keys is kept sorted.
type bnode struct {
	addr     uint64
	keys     []uint64
	values   []uint64 // leaf payloads (row ids)
	children []*bnode
	next     *bnode // leaf chain for range scans
	leaf     bool
}

// BTree is a B+ tree keyed by uint64 with uint64 payloads, emitting a
// Load per visited node and a branch per search decision.
type BTree struct {
	heap *memsim.Heap
	root *bnode
	code *trace.CodeRegion
	size int
}

// NewBTree builds an empty tree whose node traversal code lives in the
// given region.
func NewBTree(heap *memsim.Heap, code *trace.CodeRegion) *BTree {
	t := &BTree{heap: heap, code: code}
	t.root = t.newNode(true)
	return t
}

func (t *BTree) newNode(leaf bool) *bnode {
	return &bnode{
		addr: t.heap.Alloc(nodeBytes),
		leaf: leaf,
	}
}

// Len returns the number of stored keys.
func (t *BTree) Len() int { return t.size }

// visit emits the traversal work for one node: the node load plus the
// binary-search branches, whose outcomes depend on the actual keys.
func (t *BTree) visit(col trace.Collector, n *bnode, key uint64) int {
	col.Load(n.addr, nodeBytes)
	// Binary search over the sorted keys.
	lo, hi := 0, len(n.keys)
	steps := 0
	for lo < hi {
		mid := (lo + hi) / 2
		goRight := n.keys[mid] <= key
		col.Branch(t.code.Base+uint64(steps%5), goRight)
		if goRight {
			lo = mid + 1
		} else {
			hi = mid
		}
		steps++
	}
	col.Ops(4 + steps)
	return lo
}

// Lookup finds key, returning its payload.
func (t *BTree) Lookup(col trace.Collector, key uint64) (uint64, bool) {
	col.Exec(t.code, 220)
	n := t.root
	for !n.leaf {
		i := t.visit(col, n, key)
		n = n.children[i]
	}
	i := t.visit(col, n, key)
	if i > 0 && n.keys[i-1] == key {
		return n.values[i-1], true
	}
	return 0, false
}

// Insert adds or replaces key with the payload.
func (t *BTree) Insert(col trace.Collector, key, value uint64) {
	col.Exec(t.code, 320)
	root := t.root
	if len(root.keys) >= btreeOrder {
		newRoot := t.newNode(false)
		newRoot.children = append(newRoot.children, root)
		t.splitChild(col, newRoot, 0)
		t.root = newRoot
	}
	t.insertNonFull(col, t.root, key, value)
}

func (t *BTree) insertNonFull(col trace.Collector, n *bnode, key, value uint64) {
	for {
		i := t.visit(col, n, key)
		if n.leaf {
			if i > 0 && n.keys[i-1] == key {
				n.values[i-1] = value
				col.Store(n.addr, 16)
				return
			}
			n.keys = append(n.keys, 0)
			n.values = append(n.values, 0)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.values[i+1:], n.values[i:])
			n.keys[i] = key
			n.values[i] = value
			col.Store(n.addr, nodeBytes/2)
			t.size++
			return
		}
		child := n.children[i]
		if len(child.keys) >= btreeOrder {
			t.splitChild(col, n, i)
			if key >= n.keys[i] {
				i++
			}
			child = n.children[i]
		}
		n = child
	}
}

// splitChild splits the full i-th child of parent.
func (t *BTree) splitChild(col trace.Collector, parent *bnode, i int) {
	child := parent.children[i]
	mid := len(child.keys) / 2
	right := t.newNode(child.leaf)

	if child.leaf {
		right.keys = append(right.keys, child.keys[mid:]...)
		right.values = append(right.values, child.values[mid:]...)
		child.keys = child.keys[:mid]
		child.values = child.values[:mid]
		right.next = child.next
		child.next = right
		// Separator is the first key of the right leaf.
		parent.keys = insertU64(parent.keys, i, right.keys[0])
	} else {
		sep := child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
		parent.keys = insertU64(parent.keys, i, sep)
	}
	parent.children = insertNode(parent.children, i+1, right)
	col.Store(parent.addr, nodeBytes)
	col.Store(right.addr, nodeBytes)
	col.Store(child.addr, nodeBytes/2)
}

// Delete removes a key, reporting whether it was present. Underflowed nodes
// are not rebalanced (deletes are rare in the modeled workloads; lookups
// remain correct).
func (t *BTree) Delete(col trace.Collector, key uint64) bool {
	col.Exec(t.code, 280)
	n := t.root
	for !n.leaf {
		i := t.visit(col, n, key)
		n = n.children[i]
	}
	i := t.visit(col, n, key)
	if i == 0 || n.keys[i-1] != key {
		return false
	}
	n.keys = append(n.keys[:i-1], n.keys[i:]...)
	n.values = append(n.values[:i-1], n.values[i:]...)
	col.Store(n.addr, nodeBytes/2)
	t.size--
	return true
}

// Scan visits up to limit entries with key >= from in key order, calling fn
// for each; fn returns false to stop early. Returns the number visited.
func (t *BTree) Scan(col trace.Collector, from uint64, limit int, fn func(key, value uint64) bool) int {
	col.Exec(t.code, 260)
	n := t.root
	for !n.leaf {
		i := t.visit(col, n, from)
		n = n.children[i]
	}
	i := t.visit(col, n, from)
	if i > 0 && n.keys[i-1] == from {
		i--
	}
	visited := 0
	for n != nil && visited < limit {
		for ; i < len(n.keys) && visited < limit; i++ {
			col.Branch(t.code.Base+7, true)
			visited++
			if !fn(n.keys[i], n.values[i]) {
				return visited
			}
		}
		n = n.next
		if n != nil {
			col.Load(n.addr, nodeBytes)
		}
		i = 0
	}
	return visited
}

// Min returns the smallest key, or ok=false when empty.
func (t *BTree) Min(col trace.Collector) (key, value uint64, ok bool) {
	n := t.root
	col.Exec(t.code, 150)
	for !n.leaf {
		col.Load(n.addr, nodeBytes)
		n = n.children[0]
	}
	col.Load(n.addr, nodeBytes)
	if len(n.keys) == 0 {
		return 0, 0, false
	}
	return n.keys[0], n.values[0], true
}

// check validates tree invariants (tests only).
func (t *BTree) check() error {
	var prev uint64
	first := true
	count := 0
	var walk func(n *bnode) error
	walk = func(n *bnode) error {
		if n.leaf {
			for j, k := range n.keys {
				if !first && k <= prev {
					return fmt.Errorf("silodb: keys out of order: %d after %d", k, prev)
				}
				prev, first = k, false
				count++
				_ = j
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("silodb: interior node with %d keys, %d children", len(n.keys), len(n.children))
		}
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("silodb: size %d but %d keys reachable", t.size, count)
	}
	return nil
}

func insertU64(s []uint64, i int, v uint64) []uint64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNode(s []*bnode, i int, v *bnode) []*bnode {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
