package silodb

import (
	"fmt"

	"datamime/internal/memsim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

// Mode selects the database's workload family.
type Mode int

const (
	// ModeTPCC runs the five TPC-C transaction types against warehouse-
	// scaled tables — the dataset family Datamime's silo generator explores
	// (Table III: # warehouses and the transaction-type ratios).
	ModeTPCC Mode = iota
	// ModeBidding runs the paper's silo *target*: a synthetic bidding
	// benchmark where each transaction bids on a random item and
	// conditionally overwrites the current high bid.
	ModeBidding
)

// TxType indexes the five TPC-C transaction types.
type TxType int

// TPC-C transaction types, in Table III order.
const (
	TxNewOrder TxType = iota
	TxPayment
	TxDelivery
	TxOrderStatus
	TxStockLevel
	numTxTypes
)

var txNames = [numTxTypes]string{"new_order", "payment", "delivery", "order_status", "stock_level"}

func (t TxType) String() string {
	if t < 0 || t >= numTxTypes {
		return fmt.Sprintf("TxType(%d)", int(t))
	}
	return txNames[t]
}

// Scaled-down TPC-C shape: the ratios between tables match TPC-C; absolute
// counts are reduced so dataset construction is cheap. What matters to the
// profiles is the footprint *lever* (warehouses), not absolute fidelity.
const (
	districtsPerWarehouse = 10
	customersPerDistrict  = 100
	itemCount             = 5000
	initialOrdersPerDist  = 30
	maxOrderLines         = 15
)

// Config is a silodb dataset configuration.
type Config struct {
	Mode Mode
	// Warehouses scales every TPC-C table (ModeTPCC).
	Warehouses int
	// TxMix is the relative weight of each TPC-C transaction type; it is
	// normalized internally (ModeTPCC).
	TxMix [5]float64
	// BidItems is the bidding table size (ModeBidding).
	BidItems int
	// BidRowBytes is the bidding row size (ModeBidding).
	BidRowBytes int
	// BidSkew is the Zipf skew of item popularity; 0 = uniform
	// (ModeBidding).
	BidSkew float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Mode {
	case ModeTPCC:
		if c.Warehouses <= 0 {
			return fmt.Errorf("silodb: Warehouses must be positive, got %d", c.Warehouses)
		}
		var sum float64
		for i, w := range c.TxMix {
			if w < 0 {
				return fmt.Errorf("silodb: negative weight for %s", TxType(i))
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("silodb: transaction mix has zero total weight")
		}
	case ModeBidding:
		if c.BidItems <= 0 {
			return fmt.Errorf("silodb: BidItems must be positive, got %d", c.BidItems)
		}
		if c.BidRowBytes <= 0 {
			return fmt.Errorf("silodb: BidRowBytes must be positive, got %d", c.BidRowBytes)
		}
		if c.BidSkew < 0 {
			return fmt.Errorf("silodb: BidSkew must be >= 0, got %g", c.BidSkew)
		}
	default:
		return fmt.Errorf("silodb: unknown mode %d", c.Mode)
	}
	return nil
}

// Server is the database plus its transaction executor.
type Server struct {
	cfg  Config
	heap *memsim.Heap

	warehouse  *Table
	district   *Table
	customer   *Table
	item       *Table
	stock      *Table
	orders     *Table
	orderLines *Table
	newOrders  *Table
	history    *Table
	bids       *Table
	log        *RedoLog

	code    serverCode
	zipf    *stats.Zipf
	mixCum  [5]float64
	nextOID []uint64 // per (warehouse, district)
	nextHID uint64

	txCounts [5]int
	bidTx    int
	bidWins  int
	lastReq  int
	lastResp int
}

// serverCode holds the database's text regions.
type serverCode struct {
	dispatch    *trace.CodeRegion
	btree       *trace.CodeRegion
	newOrder    *trace.CodeRegion
	payment     *trace.CodeRegion
	delivery    *trace.CodeRegion
	orderStatus *trace.CodeRegion
	stockLevel  *trace.CodeRegion
	bid         *trace.CodeRegion
	occ         *trace.CodeRegion
	logCode     *trace.CodeRegion
}

// New builds and populates the database deterministically from seed.
// It panics on an invalid config.
func New(cfg Config, layout *trace.CodeLayout, seed uint64) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	heap := memsim.NewHeap()
	code := serverCode{
		dispatch:    layout.Region("silo.dispatch", 3<<10),
		btree:       layout.Region("silo.btree", 6<<10),
		newOrder:    layout.Region("silo.tx_new_order", 12<<10),
		payment:     layout.Region("silo.tx_payment", 8<<10),
		delivery:    layout.Region("silo.tx_delivery", 10<<10),
		orderStatus: layout.Region("silo.tx_order_status", 6<<10),
		stockLevel:  layout.Region("silo.tx_stock_level", 9<<10),
		bid:         layout.Region("silo.tx_bid", 5<<10),
		occ:         layout.Region("silo.occ_commit", 5<<10),
		logCode:     layout.Region("silo.redo_log", 3<<10),
	}
	s := &Server{cfg: cfg, heap: heap, code: code}
	s.log = NewRedoLog(heap, 1<<20, code.logCode)

	popRNG := stats.NewRNG(stats.HashSeed(seed, "silo-populate"))
	var null trace.Null
	switch cfg.Mode {
	case ModeTPCC:
		s.populateTPCC(null, popRNG)
		var sum float64
		for _, w := range cfg.TxMix {
			sum += w
		}
		acc := 0.0
		for i, w := range cfg.TxMix {
			acc += w / sum
			s.mixCum[i] = acc
		}
	case ModeBidding:
		s.bids = NewTable("bids", cfg.BidRowBytes, heap, code.btree)
		for i := 0; i < cfg.BidItems; i++ {
			s.bids.Insert(null, uint64(i), int64(popRNG.IntN(1000)), 0)
		}
		if cfg.BidSkew > 0 {
			s.zipf = stats.NewZipf(cfg.BidItems, cfg.BidSkew)
		}
	}
	return s
}

// populateTPCC builds the warehouse-scaled tables.
func (s *Server) populateTPCC(col trace.Collector, rng *stats.RNG) {
	c := s.code
	s.warehouse = NewTable("warehouse", 96, s.heap, c.btree)
	s.district = NewTable("district", 112, s.heap, c.btree)
	s.customer = NewTable("customer", 256, s.heap, c.btree)
	s.item = NewTable("item", 88, s.heap, c.btree)
	s.stock = NewTable("stock", 64, s.heap, c.btree)
	s.orders = NewTable("orders", 48, s.heap, c.btree)
	s.orderLines = NewTable("order_line", 56, s.heap, c.btree)
	s.newOrders = NewTable("new_order", 16, s.heap, c.btree)
	s.history = NewTable("history", 46, s.heap, c.btree)

	for i := 0; i < itemCount; i++ {
		s.item.Insert(col, uint64(i), int64(rng.IntN(10000)), 0)
	}
	W := s.cfg.Warehouses
	s.nextOID = make([]uint64, W*districtsPerWarehouse)
	for w := 0; w < W; w++ {
		s.warehouse.Insert(col, uint64(w), 0, 0)
		for i := 0; i < itemCount; i++ {
			s.stock.Insert(col, stockKey(w, i), int64(10+rng.IntN(90)), 0)
		}
		for d := 0; d < districtsPerWarehouse; d++ {
			s.district.Insert(col, wdKey(w, d, 0), 0, int64(initialOrdersPerDist))
			for cu := 0; cu < customersPerDistrict; cu++ {
				s.customer.Insert(col, wdKey(w, d, uint64(cu)), 0, -1)
			}
			for o := 0; o < initialOrdersPerDist; o++ {
				s.insertOrder(col, rng, w, d, uint64(o), o >= initialOrdersPerDist-10)
			}
			s.nextOID[w*districtsPerWarehouse+d] = initialOrdersPerDist
		}
	}
}

// insertOrder creates one order with its lines; undelivered orders also get
// a new_order row.
func (s *Server) insertOrder(col trace.Collector, rng *stats.RNG, w, d int, oid uint64, undelivered bool) {
	cid := uint64(rng.IntN(customersPerDistrict))
	nLines := 5 + rng.IntN(maxOrderLines-5+1)
	s.orders.Insert(col, orderKey(w, d, oid), int64(cid), int64(nLines))
	s.customer.Modify(col, wdKey(w, d, cid), func(f1, f2 int64) (int64, int64) {
		return f1, int64(oid)
	})
	for l := 0; l < nLines; l++ {
		itemID := rng.IntN(itemCount)
		s.orderLines.Insert(col, lineKey(w, d, oid, l), int64(itemID), int64(1+rng.IntN(10)))
	}
	if undelivered {
		s.newOrders.Insert(col, orderKey(w, d, oid), 0, 0)
	}
}

// Composite key packing: w(8 bits) | d(8) | id(40) for table rows, and
// w | d | oid(32) | line(8) for order lines.
func wdKey(w, d int, id uint64) uint64 {
	return uint64(w)<<56 | uint64(d)<<48 | id
}
func stockKey(w, item int) uint64 { return uint64(w)<<56 | uint64(item) }
func orderKey(w, d int, oid uint64) uint64 {
	return uint64(w)<<56 | uint64(d)<<48 | oid
}
func lineKey(w, d int, oid uint64, line int) uint64 {
	return uint64(w)<<56 | uint64(d)<<48 | oid<<8 | uint64(line)
}

// Name implements workload.Server.
func (s *Server) Name() string { return "silo" }

// Handle executes one transaction.
func (s *Server) Handle(col trace.Collector, rng *stats.RNG) {
	col.Exec(s.code.dispatch, 700)
	s.lastReq, s.lastResp = 96, 64
	if s.cfg.Mode == ModeBidding {
		s.txBid(col, rng)
		return
	}
	u := rng.Float64()
	var tx TxType
	for i, cum := range s.mixCum {
		tx = TxType(i)
		col.Branch(s.code.dispatch.Base+uint64(i), u < cum)
		if u < cum {
			break
		}
	}
	s.txCounts[tx]++
	w := rng.IntN(s.cfg.Warehouses)
	switch tx {
	case TxNewOrder:
		s.txNewOrder(col, rng, w)
	case TxPayment:
		s.txPayment(col, rng, w)
	case TxDelivery:
		s.txDelivery(col, rng, w)
	case TxOrderStatus:
		s.txOrderStatus(col, rng, w)
	case TxStockLevel:
		s.txStockLevel(col, rng, w)
	}
}

// commit models the OCC validation and redo-log append: re-read a sample of
// the read set, branch on version checks, and append the log record.
func (s *Server) commit(col trace.Collector, reads, writes int) {
	col.Exec(s.code.occ, 500+45*reads)
	for i := 0; i < reads && i < 8; i++ {
		col.Branch(s.code.occ.Base+uint64(i%3), true) // versions valid
	}
	if writes > 0 {
		s.log.Append(col, 48+64*writes)
	}
}

func (s *Server) txNewOrder(col trace.Collector, rng *stats.RNG, w int) {
	col.Exec(s.code.newOrder, 3800)
	d := rng.IntN(districtsPerWarehouse)
	cid := uint64(rng.IntN(customersPerDistrict))
	s.warehouse.Read(col, uint64(w))
	s.customer.Read(col, wdKey(w, d, cid))
	var oid uint64
	s.district.Modify(col, wdKey(w, d, 0), func(f1, f2 int64) (int64, int64) {
		oid = uint64(f1)
		return f1 + 1, f2
	})
	di := w*districtsPerWarehouse + d
	oid = s.nextOID[di]
	s.nextOID[di]++

	nLines := 5 + rng.IntN(maxOrderLines-5+1)
	s.orders.Insert(col, orderKey(w, d, oid), int64(cid), int64(nLines))
	s.newOrders.Insert(col, orderKey(w, d, oid), 0, 0)
	s.customer.Modify(col, wdKey(w, d, cid), func(f1, f2 int64) (int64, int64) {
		return f1, int64(oid)
	})
	for l := 0; l < nLines; l++ {
		itemID := rng.IntN(itemCount)
		s.item.Read(col, uint64(itemID))
		// 1% of stock reads hit a remote warehouse, as in TPC-C.
		sw := w
		if s.cfg.Warehouses > 1 && rng.Bool(0.01) {
			sw = rng.IntN(s.cfg.Warehouses)
		}
		s.stock.Modify(col, stockKey(sw, itemID), func(f1, f2 int64) (int64, int64) {
			q := f1 - int64(1+rng.IntN(10))
			low := q < 10
			col.Branch(s.code.newOrder.Base+3, low)
			if low {
				q += 91
			}
			return q, f2 + 1
		})
		s.orderLines.Insert(col, lineKey(w, d, oid, l), int64(itemID), int64(1+rng.IntN(10)))
	}
	s.commit(col, 3+2*nLines, 2+2*nLines)
	s.lastReq, s.lastResp = 128+nLines*24, 64
}

func (s *Server) txPayment(col trace.Collector, rng *stats.RNG, w int) {
	col.Exec(s.code.payment, 2600)
	d := rng.IntN(districtsPerWarehouse)
	cid := uint64(rng.IntN(customersPerDistrict))
	amount := int64(1 + rng.IntN(5000))
	s.warehouse.Modify(col, uint64(w), func(f1, f2 int64) (int64, int64) { return f1 + amount, f2 })
	s.district.Modify(col, wdKey(w, d, 0), func(f1, f2 int64) (int64, int64) { return f1, f2 })
	s.customer.Modify(col, wdKey(w, d, cid), func(f1, f2 int64) (int64, int64) {
		return f1 - amount, f2
	})
	s.history.Insert(col, s.nextHID, amount, 0)
	s.nextHID++
	s.commit(col, 3, 4)
}

func (s *Server) txDelivery(col trace.Collector, rng *stats.RNG, w int) {
	col.Exec(s.code.delivery, 3200)
	delivered := 0
	for d := 0; d < districtsPerWarehouse; d++ {
		// Oldest undelivered order in this district.
		var oKey uint64
		found := false
		s.newOrders.Scan(col, orderKey(w, d, 0), 1, func(key uint64, f1, f2 int64) bool {
			if key>>48 == uint64(w)<<8|uint64(d) {
				oKey, found = key, true
			}
			return false
		})
		col.Branch(s.code.delivery.Base, found)
		if !found {
			continue
		}
		s.newOrders.Delete(col, oKey)
		var cid, nLines int64
		s.orders.Modify(col, oKey, func(f1, f2 int64) (int64, int64) {
			cid, nLines = f1, f2
			return f1, f2
		})
		oid := oKey & ((1 << 48) - 1)
		var total int64
		s.orderLines.Scan(col, oid<<8|uint64(w)<<56|uint64(d)<<48, int(nLines), func(key uint64, f1, f2 int64) bool {
			total += f2
			return true
		})
		s.customer.Modify(col, wdKey(w, d, uint64(cid)), func(f1, f2 int64) (int64, int64) {
			return f1 + total, f2
		})
		delivered++
	}
	s.commit(col, 4*delivered, 3*delivered)
}

func (s *Server) txOrderStatus(col trace.Collector, rng *stats.RNG, w int) {
	col.Exec(s.code.orderStatus, 1900)
	d := rng.IntN(districtsPerWarehouse)
	cid := uint64(rng.IntN(customersPerDistrict))
	_, lastOID, ok := s.customer.Read(col, wdKey(w, d, cid))
	col.Branch(s.code.orderStatus.Base, ok && lastOID >= 0)
	if !ok || lastOID < 0 {
		s.commit(col, 1, 0)
		return
	}
	_, nLines, ok := s.orders.Read(col, orderKey(w, d, uint64(lastOID)))
	if ok {
		s.orderLines.Scan(col, lineKey(w, d, uint64(lastOID), 0), int(nLines),
			func(key uint64, f1, f2 int64) bool { return true })
	}
	s.commit(col, 2+int(nLines), 0)
}

func (s *Server) txStockLevel(col trace.Collector, rng *stats.RNG, w int) {
	col.Exec(s.code.stockLevel, 2900)
	d := rng.IntN(districtsPerWarehouse)
	next := s.nextOID[w*districtsPerWarehouse+d]
	from := uint64(0)
	if next > 20 {
		from = next - 20
	}
	low := 0
	scanned := 0
	s.orderLines.Scan(col, lineKey(w, d, from, 0), 20*8, func(key uint64, itemID, qty int64) bool {
		scanned++
		q, _, ok := s.stock.Read(col, stockKey(w, int(itemID)))
		isLow := ok && q < 15
		col.Branch(s.code.stockLevel.Base+uint64(scanned%4), isLow)
		if isLow {
			low++
		}
		return true
	})
	col.Ops(20 * scanned)
	s.commit(col, scanned, 0)
}

// txBid is the target bidding transaction: bid on a random item and
// overwrite the current entry if larger.
func (s *Server) txBid(col trace.Collector, rng *stats.RNG) {
	s.bidTx++
	col.Exec(s.code.bid, 1600)
	var idx int
	if s.zipf != nil {
		idx = s.zipf.Sample(rng)
	} else {
		idx = rng.IntN(s.cfg.BidItems)
	}
	newBid := int64(rng.IntN(2000))
	won := false
	s.bids.Modify(col, uint64(idx), func(cur, count int64) (int64, int64) {
		won = newBid > cur
		col.Branch(s.code.bid.Base+1, won)
		if won {
			return newBid, count + 1
		}
		return cur, count
	})
	if won {
		s.bidWins++
		s.commit(col, 1, 1)
	} else {
		s.commit(col, 1, 0)
	}
}

// WarmDataset implements workload.Warmable: scan every table once so
// measurement starts from a long-running server's steady-state caches.
func (s *Server) WarmDataset(col trace.Collector) {
	if s.cfg.Mode == ModeBidding {
		s.bids.WarmScan(col)
		return
	}
	for _, t := range []*Table{
		s.item, s.warehouse, s.district, s.customer,
		s.orders, s.orderLines, s.newOrders, s.stock,
	} {
		t.WarmScan(col)
	}
}

// LastMessageSizes implements workload.Sizer.
func (s *Server) LastMessageSizes() (req, resp int) { return s.lastReq, s.lastResp }

// TxCounts returns per-type executed transaction counts (ModeTPCC).
func (s *Server) TxCounts() [5]int { return s.txCounts }

// BidStats returns bidding transaction counts (ModeBidding).
func (s *Server) BidStats() (txs, wins int) { return s.bidTx, s.bidWins }

// Heap exposes the simulated heap (tests).
func (s *Server) Heap() *memsim.Heap { return s.heap }

// Log exposes the redo log (tests).
func (s *Server) Log() *RedoLog { return s.log }

// BiddingTarget is the paper's silo target workload: a large bidding table
// accessed uniformly at random — the source of silo's characteristically
// high LLC MPKI.
func BiddingTarget() Config {
	return Config{
		Mode:        ModeBidding,
		BidItems:    400_000,
		BidRowBytes: 160,
		BidSkew:     0,
	}
}

// BiddingQPS is the offered load of the silo target.
const BiddingQPS = 90_000

// TPCCDefault is the public comparison dataset (Tailbench's default TPC-C
// setup) used for the red bars of Figs. 1 and 3.
func TPCCDefault() Config {
	return Config{
		Mode:       ModeTPCC,
		Warehouses: 4,
		TxMix:      [5]float64{0.45, 0.43, 0.04, 0.04, 0.04},
	}
}

// TPCCDefaultQPS is the offered load used with the public dataset.
const TPCCDefaultQPS = 30_000
