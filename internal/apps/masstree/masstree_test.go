package masstree

import (
	"testing"

	"datamime/internal/memsim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

func newTestTree() *Tree {
	layout := trace.NewCodeLayout()
	return NewTree(memsim.NewHeap(), layout.Region("mt", 4096))
}

func TestTreePutGet(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	const n = 5000
	for i := uint64(0); i < n; i++ {
		tr.Put(null, scatter(i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tr.Get(null, scatter(i))
		if !ok || v != i {
			t.Fatalf("Get(%d) = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := tr.Get(null, scatter(n+1)); ok {
		t.Fatal("absent key found")
	}
}

func TestTreeReplace(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	tr.Put(null, 99, 1)
	tr.Put(null, 99, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	if v, _ := tr.Get(null, 99); v != 2 {
		t.Fatalf("Get = %d", v)
	}
}

func TestTreeEmitsNodeLoads(t *testing.T) {
	tr := newTestTree()
	var null trace.Null
	for i := uint64(0); i < 10000; i++ {
		tr.Put(null, scatter(i), i)
	}
	rec := trace.NewRecorder()
	tr.Get(rec, scatter(1234))
	if rec.Loads < 3 {
		t.Fatalf("lookup of deep tree emitted %d node loads", rec.Loads)
	}
	if rec.Branches < 6 {
		t.Fatalf("binary search emitted only %d branches", rec.Branches)
	}
}

func TestScatterIsInjectiveOnRange(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 100000; i++ {
		k := scatter(i)
		if seen[k] {
			t.Fatalf("scatter collision at %d", i)
		}
		seen[k] = true
	}
}

func smallConfig() Config {
	return Config{
		NumKeys:        3000,
		ValueSize:      stats.Normal{Mu: 110, Sigma: 15, Min: 32},
		GetRatio:       0.5,
		PopularitySkew: 0.4,
	}
}

func TestServerBasics(t *testing.T) {
	s := New(smallConfig(), trace.NewCodeLayout(), 1)
	if s.Tree().Len() != 3000 {
		t.Fatalf("populated %d keys", s.Tree().Len())
	}
	rng := stats.NewRNG(2)
	rec := trace.NewRecorder()
	for i := 0; i < 2000; i++ {
		s.Handle(rec, rng)
	}
	gets, puts := s.Stats()
	if gets+puts != 2000 {
		t.Fatalf("requests = %d", gets+puts)
	}
	if gets < 800 || puts < 800 {
		t.Fatalf("50/50 mix skewed: %d/%d", gets, puts)
	}
	req, resp := s.LastMessageSizes()
	if req <= 0 || resp <= 0 {
		t.Fatalf("message sizes %d/%d", req, resp)
	}
}

func TestServerCodeFootprintSmallerThanKVStore(t *testing.T) {
	// The defining property of the case study: masstree's code footprint is
	// much smaller than memcached's (Table IV: ICache MPKI 1.20 vs 16.3).
	layout := trace.NewCodeLayout()
	New(smallConfig(), layout, 3)
	rec := trace.NewRecorder()
	s2 := New(smallConfig(), trace.NewCodeLayout(), 3)
	rng := stats.NewRNG(4)
	for i := 0; i < 100; i++ {
		s2.Handle(rec, rng)
	}
	if len(rec.DistinctRegions) > 5 {
		t.Fatalf("masstree touched %d code regions; expected a compact hot path", len(rec.DistinctRegions))
	}
}

func TestServerDeterministic(t *testing.T) {
	run := func() int {
		s := New(smallConfig(), trace.NewCodeLayout(), 7)
		rng := stats.NewRNG(8)
		rec := trace.NewRecorder()
		for i := 0; i < 300; i++ {
			s.Handle(rec, rng)
		}
		return rec.Instrs
	}
	if run() != run() {
		t.Fatal("same-seed runs diverged")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := smallConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := YCSBTarget().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NumKeys: 0, ValueSize: stats.Constant{V: 10}},
		{NumKeys: 10},
		{NumKeys: 10, ValueSize: stats.Constant{V: 10}, GetRatio: 2},
		{NumKeys: 10, ValueSize: stats.Constant{V: 10}, PopularitySkew: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
}

func TestServerPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{}, trace.NewCodeLayout(), 0)
}
