// Package masstree implements the masstree case-study target (§V-C): a
// cache-crafted in-memory key-value store in the style of Mao et al.'s
// Masstree — a trie of B+-tree layers with cache-line-sized interior nodes
// keyed on 8-byte key slices. It exists as a *target whose program differs
// from the search program*: the paper shows Datamime can match masstree's
// IPC and LLC MPKI curves using memcached as the stand-in application even
// though the code (and hence the instruction-side metrics) differ.
//
// Compared to the kvstore package, masstree's code footprint is small
// (cache-optimized), its traversal touches few, wide nodes — but its
// binary-search decisions on uniformly random YCSB keys are branch-hostile
// and its leaves scatter across a large working set, giving the high LLC
// and branch MPKI the paper reports in Table IV.
package masstree

import (
	"fmt"

	"datamime/internal/memsim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

// fanout is the keys-per-node width; a node spans two cache lines like
// Masstree's interior nodes.
const fanout = 14

// nodeBytes is the simulated node size.
const nodeBytes = 2 * trace.LineSize

// node is one B+-tree node within a trie layer.
type node struct {
	addr     uint64
	keys     []uint64
	values   []uint64 // leaf: value handles
	children []*node
	leaf     bool
}

// Tree is the trie-of-B+-trees structure, flattened here to a single-layer
// B+ tree over 64-bit keys (one key slice) — masstree's shape for 8-byte
// keys, which is what YCSB drives it with.
type Tree struct {
	heap *memsim.Heap
	root *node
	size int
	code *trace.CodeRegion
}

// NewTree builds an empty tree.
func NewTree(heap *memsim.Heap, code *trace.CodeRegion) *Tree {
	t := &Tree{heap: heap, code: code}
	t.root = t.newNode(true)
	return t
}

func (t *Tree) newNode(leaf bool) *node {
	return &node{addr: t.heap.Alloc(nodeBytes), leaf: leaf}
}

// Len returns the stored key count.
func (t *Tree) Len() int { return t.size }

// descend emits the node load and binary-search branches for one node.
func (t *Tree) descend(col trace.Collector, n *node, key uint64) int {
	col.Load(n.addr, nodeBytes)
	lo, hi := 0, len(n.keys)
	step := 0
	for lo < hi {
		mid := (lo + hi) / 2
		right := n.keys[mid] <= key
		col.Branch(t.code.Base+uint64(step%6), right)
		if right {
			lo = mid + 1
		} else {
			hi = mid
		}
		step++
	}
	col.Ops(24 + 8*step)
	return lo
}

// Get looks up key, returning its value handle.
func (t *Tree) Get(col trace.Collector, key uint64) (uint64, bool) {
	col.Exec(t.code, 450)
	n := t.root
	for !n.leaf {
		n = n.children[t.descend(col, n, key)]
	}
	i := t.descend(col, n, key)
	if i > 0 && n.keys[i-1] == key {
		return n.values[i-1], true
	}
	return 0, false
}

// Put inserts or replaces key's value handle.
func (t *Tree) Put(col trace.Collector, key, value uint64) {
	col.Exec(t.code, 650)
	if len(t.root.keys) >= fanout {
		old := t.root
		t.root = t.newNode(false)
		t.root.children = append(t.root.children, old)
		t.split(col, t.root, 0)
	}
	n := t.root
	for {
		i := t.descend(col, n, key)
		if n.leaf {
			if i > 0 && n.keys[i-1] == key {
				n.values[i-1] = value
				col.Store(n.addr, 16)
				return
			}
			n.keys = append(n.keys, 0)
			n.values = append(n.values, 0)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.values[i+1:], n.values[i:])
			n.keys[i] = key
			n.values[i] = value
			col.Store(n.addr, nodeBytes/2)
			t.size++
			return
		}
		child := n.children[i]
		if len(child.keys) >= fanout {
			t.split(col, n, i)
			if key >= n.keys[i] {
				i++
			}
			child = n.children[i]
		}
		n = child
	}
}

// split divides the full i-th child of parent.
func (t *Tree) split(col trace.Collector, parent *node, i int) {
	child := parent.children[i]
	mid := len(child.keys) / 2
	right := t.newNode(child.leaf)
	var sep uint64
	if child.leaf {
		right.keys = append(right.keys, child.keys[mid:]...)
		right.values = append(right.values, child.values[mid:]...)
		child.keys = child.keys[:mid]
		child.values = child.values[:mid]
		sep = right.keys[0]
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}
	parent.keys = append(parent.keys, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	col.Store(parent.addr, nodeBytes)
	col.Store(right.addr, nodeBytes)
	col.Store(child.addr, nodeBytes/2)
}

// Config is the masstree target's dataset: YCSB-style uniform keys with a
// configurable read ratio.
type Config struct {
	NumKeys   int
	ValueSize stats.Distribution
	GetRatio  float64
	// PopularitySkew is the Zipf skew of key popularity (YCSB-A uses a
	// mild skew; 0 = uniform).
	PopularitySkew float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumKeys <= 0 {
		return fmt.Errorf("masstree: NumKeys must be positive, got %d", c.NumKeys)
	}
	if c.ValueSize == nil {
		return fmt.Errorf("masstree: ValueSize distribution required")
	}
	if c.GetRatio < 0 || c.GetRatio > 1 {
		return fmt.Errorf("masstree: GetRatio %g out of [0, 1]", c.GetRatio)
	}
	if c.PopularitySkew < 0 {
		return fmt.Errorf("masstree: PopularitySkew %g must be >= 0", c.PopularitySkew)
	}
	return nil
}

// Server is the masstree request server.
type Server struct {
	cfg    Config
	heap   *memsim.Heap
	tree   *Tree
	vals   []valMeta
	zipf   *stats.Zipf
	perm   []int
	parse  *trace.CodeRegion
	resp   *trace.CodeRegion
	rxBuf  uint64
	txBuf  uint64
	gets   int
	puts   int
	lastRq int
	lastRp int
}

// valMeta tracks one value's simulated storage.
type valMeta struct {
	addr uint64
	size int
}

// New builds and populates the server deterministically from seed. It
// panics on an invalid config.
func New(cfg Config, layout *trace.CodeLayout, seed uint64) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	heap := memsim.NewHeap()
	s := &Server{
		cfg:  cfg,
		heap: heap,
		// Masstree's entire hot path is compact, cache-crafted code.
		tree:  NewTree(heap, layout.Region("mt.tree_ops", 6<<10)),
		parse: layout.Region("mt.parse", 2<<10),
		resp:  layout.Region("mt.respond", 2<<10),
		rxBuf: heap.Alloc(32 << 10),
		txBuf: heap.Alloc(32 << 10),
	}
	rng := stats.NewRNG(stats.HashSeed(seed, "mt-populate"))
	s.vals = make([]valMeta, cfg.NumKeys)
	var null trace.Null
	for i := 0; i < cfg.NumKeys; i++ {
		size := int(cfg.ValueSize.Sample(rng))
		if size < 1 {
			size = 1
		}
		s.vals[i] = valMeta{addr: heap.Alloc(size), size: size}
		s.tree.Put(null, scatter(uint64(i)), uint64(i))
	}
	s.perm = rng.Perm(cfg.NumKeys)
	if cfg.PopularitySkew > 0 {
		s.zipf = stats.NewZipf(cfg.NumKeys, cfg.PopularitySkew)
	}
	return s
}

// scatter spreads sequential ids across the key space so tree search
// decisions look like YCSB's hashed keys.
func scatter(id uint64) uint64 {
	id ^= id >> 31
	id *= 0x7fb5d329728ea185
	id ^= id >> 27
	id *= 0x81dadef4bc2dd44d
	id ^= id >> 33
	return id
}

// Name implements workload.Server.
func (s *Server) Name() string { return "masstree" }

// Tree exposes the underlying tree (tests).
func (s *Server) Tree() *Tree { return s.tree }

// Handle services one YCSB-style request.
func (s *Server) Handle(col trace.Collector, rng *stats.RNG) {
	var rank int
	if s.zipf != nil {
		rank = s.zipf.Sample(rng)
	} else {
		rank = rng.IntN(s.cfg.NumKeys)
	}
	idx := s.perm[rank]
	key := scatter(uint64(idx))

	col.Exec(s.parse, 1300)
	col.Load(s.rxBuf, 32)
	isGet := rng.Bool(s.cfg.GetRatio)
	col.Branch(s.parse.Base, isGet)
	v := &s.vals[idx]
	if isGet {
		s.gets++
		if handle, ok := s.tree.Get(col, key); ok {
			_ = handle
			col.Load(v.addr, v.size)
			col.Store(s.txBuf, minInt(v.size+24, 32<<10))
			s.lastRp = v.size + 24
		}
		s.lastRq = 40
	} else {
		s.puts++
		newSize := int(s.cfg.ValueSize.Sample(rng))
		if newSize < 1 {
			newSize = 1
		}
		s.heap.Free(v.addr, v.size)
		v.addr = s.heap.Alloc(newSize)
		v.size = newSize
		col.Load(s.rxBuf, minInt(newSize+40, 32<<10))
		col.Store(v.addr, newSize)
		s.tree.Put(col, key, uint64(idx))
		s.lastRq = newSize + 40
		s.lastRp = 16
	}
	col.Exec(s.resp, 800)
}

// WarmDataset implements workload.Warmable: walk the tree and touch every
// value once.
func (s *Server) WarmDataset(col trace.Collector) {
	var walk func(n *node)
	walk = func(n *node) {
		col.Load(n.addr, nodeBytes)
		if n.leaf {
			for _, v := range n.values {
				col.Load(s.vals[v].addr, s.vals[v].size)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(s.tree.root)
}

// LastMessageSizes implements workload.Sizer.
func (s *Server) LastMessageSizes() (req, resp int) { return s.lastRq, s.lastRp }

// Stats returns request counters.
func (s *Server) Stats() (gets, puts int) { return s.gets, s.puts }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// YCSBTarget is the masstree target workload of §V-C: masstree driven with
// YCSB — a large uniform-ish working set with a 50/50 read/update mix.
func YCSBTarget() Config {
	return Config{
		NumKeys:        500_000,
		ValueSize:      stats.Normal{Mu: 110, Sigma: 15, Min: 32},
		GetRatio:       0.5,
		PopularitySkew: 0.4,
	}
}

// YCSBQPS is the offered load of the masstree target.
const YCSBQPS = 110_000
