// Package nn implements the dnn workload's inference engine: a CNN/MLP
// engine with real float math (3×3 convolutions, strided convolutions,
// 2×2 max-pooling, fully-connected layers, ReLU) whose forward pass also
// emits its weight streaming, activation traffic, and compute into a
// trace.Collector.
//
// As in the paper, the *dataset* of this workload is the network model
// itself: Datamime's dnn generator composes synthetic networks from counts
// of each layer type and the first layer's output channels (Table III),
// while the hidden target is a ResNet-50-like model (scaled spatially so
// simulation remains fast — what matters to the profiles is the weight
// footprint, streaming pattern, and compute intensity, all of which the
// layer-count/channel parameters control).
package nn

import (
	"fmt"

	"datamime/internal/stats"
)

// Tensor is a dense CHW float32 tensor.
type Tensor struct {
	C, H, W int
	Data    []float32
}

// NewTensor allocates a zeroed tensor. It panics on non-positive dims.
func NewTensor(c, h, w int) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: invalid tensor dims %dx%dx%d", c, h, w))
	}
	return &Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// At returns element (c, y, x).
func (t *Tensor) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set assigns element (c, y, x).
func (t *Tensor) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Bytes returns the tensor's storage size in bytes.
func (t *Tensor) Bytes() int { return 4 * len(t.Data) }

// FillRandom fills the tensor with uniform values in [-1, 1).
func (t *Tensor) FillRandom(rng *stats.RNG) {
	for i := range t.Data {
		t.Data[i] = float32(rng.Range(-1, 1))
	}
}

// argmax returns the index of the largest element (ties to the first).
func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
		_ = i
	}
	return best
}
