package nn

import (
	"fmt"

	"datamime/internal/memsim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

// LayerSpec describes one layer of a network specification.
type LayerSpec struct {
	Kind LayerKind
	// OutChannels applies to convolutions (the channel width) and FC layers
	// (the output width; 0 means "same as input" for hidden FCs).
	OutChannels int
}

// NetSpec is a full network description — the dnn workload's dataset.
type NetSpec struct {
	// InputC/InputHW are the input tensor's channels and spatial size.
	InputC, InputHW int
	// Layers is the stage list, in order.
	Layers []LayerSpec
	// Classes is the final logit count.
	Classes int
}

// Validate reports specification errors.
func (s NetSpec) Validate() error {
	if s.InputC <= 0 || s.InputHW <= 0 {
		return fmt.Errorf("nn: input dims %dx%d invalid", s.InputC, s.InputHW)
	}
	if s.Classes <= 0 {
		return fmt.Errorf("nn: Classes must be positive, got %d", s.Classes)
	}
	fcSeen := false
	for i, l := range s.Layers {
		switch l.Kind {
		case Conv3x3, StridedConv3x3:
			if fcSeen {
				return fmt.Errorf("nn: conv layer %d after FC layers", i)
			}
			if l.OutChannels <= 0 {
				return fmt.Errorf("nn: conv layer %d needs positive channels", i)
			}
		case MaxPool2x2:
			if fcSeen {
				return fmt.Errorf("nn: pool layer %d after FC layers", i)
			}
		case FC:
			fcSeen = true
			if l.OutChannels < 0 {
				return fmt.Errorf("nn: fc layer %d has negative width", i)
			}
		default:
			return fmt.Errorf("nn: layer %d has unknown kind %d", i, l.Kind)
		}
	}
	return nil
}

// Model is a built network: real weights plus simulated weight storage.
type Model struct {
	spec   NetSpec
	layers []layer
	heap   *memsim.Heap
	code   modelCode
	bufA   uint64
	bufB   uint64

	inferences int
}

// modelCode holds the engine's shared text regions.
type modelCode struct {
	sched  *trace.CodeRegion
	conv   *trace.CodeRegion
	pool   *trace.CodeRegion
	fc     *trace.CodeRegion
	relu   *trace.CodeRegion
	input  *trace.CodeRegion
	output *trace.CodeRegion
}

// activation buffer size: large enough for any supported layer output.
const actBufBytes = 8 << 20

// maxFCWidth bounds hidden fully-connected widths (a 2048×2048 FC already
// carries 16 MB of weights — larger than the biggest LLC modeled).
const maxFCWidth = 2048

// Build constructs the model with seeded random weights and simulated
// weight storage. It panics on an invalid spec.
func Build(spec NetSpec, layout *trace.CodeLayout, seed uint64) *Model {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	heap := memsim.NewHeap()
	m := &Model{
		spec: spec,
		heap: heap,
		code: modelCode{
			sched:  layout.Region("nn.scheduler", 4<<10),
			conv:   layout.Region("nn.conv3x3_kernel", 7<<10),
			pool:   layout.Region("nn.maxpool_kernel", 2<<10),
			fc:     layout.Region("nn.gemm_kernel", 6<<10),
			relu:   layout.Region("nn.relu", 1<<10),
			input:  layout.Region("nn.decode_input", 5<<10),
			output: layout.Region("nn.softmax_output", 2<<10),
		},
		bufA: heap.Alloc(actBufBytes),
		bufB: heap.Alloc(actBufBytes),
	}
	rng := stats.NewRNG(stats.HashSeed(seed, "nn-weights"))

	c, h := spec.InputC, spec.InputHW
	w := spec.InputHW
	flat := 0 // non-zero once we are in FC territory
	for i, ls := range spec.Layers {
		var l layer
		switch ls.Kind {
		case Conv3x3, StridedConv3x3:
			l = layer{kind: ls.Kind, inC: c, outC: ls.OutChannels, code: m.code.conv}
			l.weights = make([]float32, ls.OutChannels*c*9)
			l.bias = make([]float32, ls.OutChannels)
			l.initWeights(rng, c*9)
			c = ls.OutChannels
			if ls.Kind == StridedConv3x3 {
				h = (h + 1) / 2
				w = (w + 1) / 2
			}
		case MaxPool2x2:
			l = layer{kind: MaxPool2x2, inC: c, outC: c, code: m.code.pool}
			h = maxInt(h/2, 1)
			w = maxInt(w/2, 1)
		case FC:
			if flat == 0 {
				flat = c * h * w
			}
			outW := ls.OutChannels
			if i == len(spec.Layers)-1 {
				outW = spec.Classes
			} else if outW == 0 {
				// Hidden FC width defaults to the flattened input width,
				// capped so a single layer's parameter count stays bounded.
				outW = minInt(flat, maxFCWidth)
			}
			l = layer{kind: FC, inC: flat, outC: outW, code: m.code.fc}
			l.weights = make([]float32, outW*flat)
			l.bias = make([]float32, outW)
			l.initWeights(rng, flat)
			flat = outW
			c, h, w = outW, 1, 1
		}
		l.wBytes = 4 * len(l.weights)
		if l.wBytes > 0 {
			l.wAddr = heap.Alloc(l.wBytes)
		}
		m.layers = append(m.layers, l)
	}
	// Networks without a trailing FC still need logits: append a classifier.
	if len(m.layers) == 0 || m.layers[len(m.layers)-1].kind != FC {
		flat = c * h * w
		l := layer{kind: FC, inC: flat, outC: spec.Classes, code: m.code.fc}
		l.weights = make([]float32, spec.Classes*flat)
		l.bias = make([]float32, spec.Classes)
		l.initWeights(rng, flat)
		l.wBytes = 4 * len(l.weights)
		l.wAddr = heap.Alloc(l.wBytes)
		m.layers = append(m.layers, l)
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NumLayers returns the built stage count (including any implicit
// classifier head).
func (m *Model) NumLayers() int { return len(m.layers) }

// WeightBytes returns the total simulated weight footprint — the memory
// lever the dnn dataset parameters control.
func (m *Model) WeightBytes() int {
	var total int
	for i := range m.layers {
		total += m.layers[i].wBytes
	}
	return total
}

// Spec returns the model's specification.
func (m *Model) Spec() NetSpec { return m.spec }

// Infer runs a forward pass on input, emitting all work into col, and
// returns the logits.
func (m *Model) Infer(col trace.Collector, input *Tensor) []float32 {
	m.inferences++
	col.Exec(m.code.sched, 250)
	col.Exec(m.code.input, 300+input.Bytes()/64)
	col.Store(m.bufA, input.Bytes())

	cur := input
	inAddr, outAddr := m.bufA, m.bufB
	for i := range m.layers {
		l := &m.layers[i]
		relu := l.kind != FC || i != len(m.layers)-1
		col.Exec(m.code.sched, 60)
		if relu && l.kind != MaxPool2x2 {
			col.Exec(m.code.relu, 30)
		}
		cur = l.forward(col, cur, relu, inAddr, outAddr)
		inAddr, outAddr = outAddr, inAddr
	}
	col.Exec(m.code.output, 120+len(cur.Data)/8)
	out := make([]float32, len(cur.Data))
	copy(out, cur.Data)
	return out
}

// Classify returns the argmax class of an inference.
func (m *Model) Classify(col trace.Collector, input *Tensor) int {
	return argmax(m.Infer(col, input))
}

// Inferences returns how many forward passes have run.
func (m *Model) Inferences() int { return m.inferences }

// SynthParams are the dnn dataset-generator parameters from Table III: the
// counts of each layer type and the first layer's output channels.
type SynthParams struct {
	Conv        int // # of 3×3 convolutions
	StridedConv int // # of 3×3 strided convolutions
	MaxPool     int // # of 2×2 max-pool layers
	FC          int // # of fully-connected layers (>=1; the last is the head)
	FirstChan   int // output channels of the first conv layer
	InputHW     int // input spatial size (fixed per workload family)
	Classes     int
}

// Synthesize composes a NetSpec from the generator parameters: downsampling
// layers (strided convs and pools) are interleaved evenly among the plain
// convolutions while the spatial size allows, channels double after each
// downsample (capped), and FC layers sit at the end, exactly as the paper
// describes ("the locations of the fully-connected layers ... are always
// positioned at the end of the network").
func Synthesize(p SynthParams) NetSpec {
	if p.InputHW <= 0 {
		p.InputHW = 16
	}
	if p.Classes <= 0 {
		p.Classes = 100
	}
	if p.FirstChan < 1 {
		p.FirstChan = 1
	}
	if p.FC < 1 {
		p.FC = 1
	}
	const maxChan = 512
	var layers []LayerSpec
	chans := p.FirstChan
	hw := p.InputHW

	down := make([]LayerKind, 0, p.StridedConv+p.MaxPool)
	for i := 0; i < p.StridedConv; i++ {
		down = append(down, StridedConv3x3)
	}
	for i := 0; i < p.MaxPool; i++ {
		down = append(down, MaxPool2x2)
	}

	convsLeft := p.Conv
	total := p.Conv + len(down)
	gap := 1
	if len(down) > 0 {
		gap = (total + len(down)) / (len(down) + 1)
		if gap < 1 {
			gap = 1
		}
	}
	sinceDown := 0
	first := true
	for convsLeft > 0 || len(down) > 0 {
		takeDown := len(down) > 0 && (convsLeft == 0 || sinceDown >= gap) && hw >= 4
		if takeDown {
			k := down[0]
			down = down[1:]
			if k == StridedConv3x3 {
				c := minInt(chans*2, maxChan)
				layers = append(layers, LayerSpec{Kind: StridedConv3x3, OutChannels: c})
				chans = c
			} else {
				layers = append(layers, LayerSpec{Kind: MaxPool2x2})
			}
			hw = maxInt(hw/2, 1)
			sinceDown = 0
			continue
		}
		if convsLeft > 0 {
			c := chans
			if first {
				c = p.FirstChan
				first = false
			}
			layers = append(layers, LayerSpec{Kind: Conv3x3, OutChannels: c})
			chans = c
			convsLeft--
			sinceDown++
			continue
		}
		// Downsamples remain but the spatial size is exhausted: drop them.
		break
	}
	for i := 0; i < p.FC; i++ {
		layers = append(layers, LayerSpec{Kind: FC})
	}
	return NetSpec{InputC: 3, InputHW: p.InputHW, Layers: layers, Classes: p.Classes}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
