package nn

import (
	"fmt"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

// LayerKind enumerates the four building-block layer types of the paper's
// dnn dataset generator (§IV): 3×3 convolution, 3×3 strided convolution,
// 2×2 max-pooling, and fully-connected.
type LayerKind int

const (
	// Conv3x3 is a stride-1, pad-1 3×3 convolution followed by ReLU.
	Conv3x3 LayerKind = iota
	// StridedConv3x3 is a stride-2, pad-1 3×3 convolution followed by ReLU
	// (halves the spatial resolution).
	StridedConv3x3
	// MaxPool2x2 is a stride-2 2×2 max-pooling layer.
	MaxPool2x2
	// FC is a fully-connected layer over the flattened input; hidden FC
	// layers apply ReLU, the final one is linear (logits).
	FC
)

func (k LayerKind) String() string {
	switch k {
	case Conv3x3:
		return "conv3x3"
	case StridedConv3x3:
		return "strided_conv3x3"
	case MaxPool2x2:
		return "maxpool2x2"
	case FC:
		return "fc"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// macsPerInstr converts multiply-accumulates to simulated instructions
// (SIMD FMA retires several MACs per instruction).
const macsPerInstr = 4

// weightChunk is the granularity of streamed weight loads.
const weightChunk = 4096

// sampleThreshold is the MAC count above which a convolution computes a
// sampled subset of output channels (replicating the rest) to bound host
// time. The emitted trace always reflects the full layer; only the host
// float work is subsampled. See DESIGN.md.
const sampleThreshold = 1 << 21

// layer is one network stage with real parameters and simulated storage.
type layer struct {
	kind    LayerKind
	inC     int
	outC    int
	weights []float32 // conv: outC*inC*9; fc: outC*inC
	bias    []float32
	wAddr   uint64
	wBytes  int
	code    *trace.CodeRegion
}

// forward runs the layer on in, emitting its work into col. relu applies
// the activation (disabled for the final FC). inAddr/outAddr are the
// simulated activation buffers this layer reads and writes (the model
// ping-pongs between two arenas, so consecutive layers genuinely reuse the
// same buffer). Returns the output tensor.
func (l *layer) forward(col trace.Collector, in *Tensor, relu bool, inAddr, outAddr uint64) *Tensor {
	switch l.kind {
	case Conv3x3, StridedConv3x3:
		return l.conv(col, in, inAddr, outAddr)
	case MaxPool2x2:
		return l.pool(col, in, inAddr, outAddr)
	case FC:
		return l.fc(col, in, relu, inAddr, outAddr)
	default:
		panic(fmt.Sprintf("nn: unknown layer kind %d", l.kind))
	}
}

// emitWeights streams the layer's full weight footprint.
func (l *layer) emitWeights(col trace.Collector) {
	for off := 0; off < l.wBytes; off += weightChunk {
		chunk := l.wBytes - off
		if chunk > weightChunk {
			chunk = weightChunk
		}
		col.Load(l.wAddr+uint64(off), chunk)
	}
}

// conv computes the (possibly strided) 3×3 convolution with ReLU.
func (l *layer) conv(col trace.Collector, in *Tensor, inAddr, outAddr uint64) *Tensor {
	stride := 1
	if l.kind == StridedConv3x3 {
		stride = 2
	}
	outH := (in.H + stride - 1) / stride
	outW := (in.W + stride - 1) / stride
	out := NewTensor(l.outC, outH, outW)

	macs := l.outC * in.C * 9 * outH * outW
	// Host-compute sampling: compute every step-th output channel exactly
	// and replicate for the skipped ones.
	step := 1
	if macs > sampleThreshold {
		step = (macs + sampleThreshold - 1) / sampleThreshold
		if step > l.outC {
			step = l.outC
		}
	}
	var positive int
	for oc := 0; oc < l.outC; oc++ {
		if oc%step != 0 {
			// Replicate the most recent computed channel.
			src := oc - oc%step
			copy(out.Data[oc*outH*outW:(oc+1)*outH*outW], out.Data[src*outH*outW:(src+1)*outH*outW])
			continue
		}
		wBase := oc * in.C * 9
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*stride - 1
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*stride - 1
				acc := l.bias[oc]
				for ic := 0; ic < in.C; ic++ {
					wOff := wBase + ic*9
					icBase := ic * in.H * in.W
					for ky := 0; ky < 3; ky++ {
						y := iy0 + ky
						if y < 0 || y >= in.H {
							continue
						}
						row := icBase + y*in.W
						for kx := 0; kx < 3; kx++ {
							x := ix0 + kx
							if x < 0 || x >= in.W {
								continue
							}
							acc += l.weights[wOff+ky*3+kx] * in.Data[row+x]
						}
					}
				}
				if acc > 0 {
					positive++
				} else {
					acc = 0 // ReLU
				}
				out.Set(oc, oy, ox, acc)
			}
		}
	}

	// Trace emission for the FULL layer.
	col.Exec(l.code, 300)
	l.emitWeights(col)
	col.Load(inAddr, in.Bytes())
	col.Store(outAddr, out.Bytes())
	col.Ops(macs / macsPerInstr)
	// Sparse data-dependent branches: activation-statistics checks
	// (inference code is loop-dominated and branch-light).
	dense := positive*2 > out.Len()
	col.Branch(l.code.Base, dense)
	col.Branch(l.code.Base+1, true) // loop exit, well predicted
	return out
}

// pool computes 2×2 max-pooling with stride 2.
func (l *layer) pool(col trace.Collector, in *Tensor, inAddr, outAddr uint64) *Tensor {
	outH := in.H / 2
	outW := in.W / 2
	if outH < 1 {
		outH = 1
	}
	if outW < 1 {
		outW = 1
	}
	out := NewTensor(in.C, outH, outW)
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				m := in.At(c, oy*2, ox*2)
				if y, x := oy*2, ox*2+1; x < in.W {
					if v := in.At(c, y, x); v > m {
						m = v
					}
				}
				if y, x := oy*2+1, ox*2; y < in.H {
					if v := in.At(c, y, x); v > m {
						m = v
					}
				}
				if y, x := oy*2+1, ox*2+1; y < in.H && x < in.W {
					if v := in.At(c, y, x); v > m {
						m = v
					}
				}
				out.Set(c, oy, ox, m)
			}
		}
	}
	col.Exec(l.code, 120)
	col.Load(inAddr, in.Bytes())
	col.Store(outAddr, out.Bytes())
	col.Ops(out.Len() * 3 / macsPerInstr)
	col.Branch(l.code.Base, true)
	return out
}

// fc computes the fully-connected layer over the flattened input.
func (l *layer) fc(col trace.Collector, in *Tensor, relu bool, inAddr, outAddr uint64) *Tensor {
	n := in.Len()
	if n != l.inC {
		panic(fmt.Sprintf("nn: fc expects %d inputs, got %d", l.inC, n))
	}
	out := NewTensor(l.outC, 1, 1)
	macs := l.outC * n
	step := 1
	if macs > sampleThreshold {
		step = (macs + sampleThreshold - 1) / sampleThreshold
		if step > l.outC {
			step = l.outC
		}
	}
	var positive int
	for o := 0; o < l.outC; o++ {
		if o%step != 0 {
			out.Data[o] = out.Data[o-o%step]
			continue
		}
		acc := l.bias[o]
		wBase := o * n
		for i := 0; i < n; i++ {
			acc += l.weights[wBase+i] * in.Data[i]
		}
		if relu {
			if acc > 0 {
				positive++
			} else {
				acc = 0
			}
		}
		out.Data[o] = acc
	}
	col.Exec(l.code, 200)
	l.emitWeights(col)
	col.Load(inAddr, in.Bytes())
	col.Store(outAddr, out.Bytes())
	col.Ops(macs / macsPerInstr)
	col.Branch(l.code.Base, positive*2 > l.outC)
	col.Branch(l.code.Base+1, true)
	return out
}

// initWeights fills the layer's parameters with scaled random values
// (He-style initialization keeps activations in range through deep stacks).
func (l *layer) initWeights(rng *stats.RNG, fanIn int) {
	scale := float32(1.7) / float32(sqrtInt(fanIn))
	for i := range l.weights {
		l.weights[i] = float32(rng.Range(-1, 1)) * scale
	}
	for i := range l.bias {
		l.bias[i] = float32(rng.Range(-0.05, 0.05))
	}
}

func sqrtInt(n int) float64 {
	if n < 1 {
		return 1
	}
	x := float64(n)
	guess := x / 2
	for i := 0; i < 20; i++ {
		guess = (guess + x/guess) / 2
	}
	return guess
}
