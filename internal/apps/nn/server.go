package nn

import (
	"datamime/internal/stats"
	"datamime/internal/trace"
)

// Server is the DNN-as-a-service frontend: each request decodes an input
// image (synthetic, as the profiles are insensitive to pixel content) and
// runs one inference, as in the paper's Tailbench-harnessed PyTorch setup.
type Server struct {
	model    *Model
	input    *Tensor
	name     string
	lastResp int
}

// NewServer wraps a built model. name distinguishes the dnn and img-dnn
// workload families.
func NewServer(model *Model, name string) *Server {
	spec := model.Spec()
	return &Server{
		model: model,
		input: NewTensor(spec.InputC, spec.InputHW, spec.InputHW),
		name:  name,
	}
}

// New builds the model from spec and wraps it, in one step.
func New(spec NetSpec, layout *trace.CodeLayout, seed uint64) *Server {
	return NewServer(Build(spec, layout, seed), "dnn")
}

// Name implements workload.Server.
func (s *Server) Name() string { return s.name }

// Model exposes the underlying model (tests and examples).
func (s *Server) Model() *Model { return s.model }

// Handle implements workload.Server: decode an input, infer, respond.
func (s *Server) Handle(col trace.Collector, rng *stats.RNG) {
	s.input.FillRandom(rng)
	logits := s.model.Infer(col, s.input)
	s.lastResp = 32 + 4*len(logits)
}

// WarmDataset implements workload.Warmable: stream the weights once (a
// loaded model resident in memory).
func (s *Server) WarmDataset(col trace.Collector) {
	for i := range s.model.layers {
		s.model.layers[i].emitWeights(col)
	}
}

// LastMessageSizes implements workload.Sizer: the request carries the
// image, the response the logits.
func (s *Server) LastMessageSizes() (req, resp int) {
	return s.input.Bytes()/8 + 128, s.lastResp // images arrive JPEG-compressed (~8x)
}

// ResNet50Target is the paper's dnn target: a ResNet-50-like model, scaled
// spatially so a pure-Go forward pass stays fast. 16 convolutions with
// doubling channel widths across 3 downsampling stages and a single
// classifier head preserve ResNet's weight-footprint distribution and
// compute intensity profile.
func ResNet50Target() NetSpec {
	return Synthesize(SynthParams{
		Conv:        16,
		StridedConv: 2,
		MaxPool:     1,
		FC:          1,
		FirstChan:   64,
		InputHW:     16,
		Classes:     100,
	})
}

// ResNetQPS is the offered load of the dnn target (long requests, low QPS).
const ResNetQPS = 150

// ShuffleNetDefault is the alternative public model of Figs. 1 and 3: a
// ShuffleNet-V2-like design — many cheap narrow layers, aggressive early
// downsampling, a light head.
func ShuffleNetDefault() NetSpec {
	return Synthesize(SynthParams{
		Conv:        10,
		StridedConv: 3,
		MaxPool:     1,
		FC:          1,
		FirstChan:   24,
		InputHW:     16,
		Classes:     100,
	})
}

// ShuffleNetQPS is the offered load used with the public model.
const ShuffleNetQPS = 650

// AutoencoderTarget is the img-dnn case-study target (§V-C): a Tailbench
// img-dnn-like handwriting-recognition autoencoder over MNIST-sized inputs,
// built purely from FC layers.
func AutoencoderTarget() NetSpec {
	return NetSpec{
		InputC:  1,
		InputHW: 28,
		Layers: []LayerSpec{
			{Kind: FC, OutChannels: 512},
			{Kind: FC, OutChannels: 128},
			{Kind: FC, OutChannels: 512},
			{Kind: FC, OutChannels: 0}, // head -> Classes
		},
		Classes: 10,
	}
}

// AutoencoderQPS is the offered load of the img-dnn target.
const AutoencoderQPS = 20_000

// NewAutoencoderServer builds the img-dnn server.
func NewAutoencoderServer(layout *trace.CodeLayout, seed uint64) *Server {
	return NewServer(Build(AutoencoderTarget(), layout, seed), "img-dnn")
}
