package nn

import (
	"math"
	"testing"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

func tinySpec() NetSpec {
	return NetSpec{
		InputC:  3,
		InputHW: 8,
		Layers: []LayerSpec{
			{Kind: Conv3x3, OutChannels: 8},
			{Kind: MaxPool2x2},
			{Kind: StridedConv3x3, OutChannels: 16},
			{Kind: FC, OutChannels: 32},
			{Kind: FC},
		},
		Classes: 10,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := tinySpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []NetSpec{
		{InputC: 0, InputHW: 8, Classes: 10},
		{InputC: 3, InputHW: 8, Classes: 0},
		{InputC: 3, InputHW: 8, Classes: 10,
			Layers: []LayerSpec{{Kind: Conv3x3, OutChannels: 0}}},
		{InputC: 3, InputHW: 8, Classes: 10,
			Layers: []LayerSpec{{Kind: FC}, {Kind: Conv3x3, OutChannels: 4}}}, // conv after fc
		{InputC: 3, InputHW: 8, Classes: 10,
			Layers: []LayerSpec{{Kind: LayerKind(9)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d validated", i)
		}
	}
}

func TestBuildAndInfer(t *testing.T) {
	m := Build(tinySpec(), trace.NewCodeLayout(), 1)
	if m.NumLayers() != 5 {
		t.Fatalf("layers = %d", m.NumLayers())
	}
	if m.WeightBytes() == 0 {
		t.Fatal("no weights")
	}
	in := NewTensor(3, 8, 8)
	rng := stats.NewRNG(2)
	in.FillRandom(rng)
	var null trace.Null
	logits := m.Infer(null, in)
	if len(logits) != 10 {
		t.Fatalf("logits = %d", len(logits))
	}
	for _, v := range logits {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite logit %g", v)
		}
	}
	if m.Inferences() != 1 {
		t.Fatalf("Inferences = %d", m.Inferences())
	}
}

func TestInferenceDeterministic(t *testing.T) {
	run := func() []float32 {
		m := Build(tinySpec(), trace.NewCodeLayout(), 7)
		in := NewTensor(3, 8, 8)
		rng := stats.NewRNG(8)
		in.FillRandom(rng)
		var null trace.Null
		return m.Infer(null, in)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed inference diverged")
		}
	}
}

func TestDifferentInputsDifferentLogits(t *testing.T) {
	m := Build(tinySpec(), trace.NewCodeLayout(), 3)
	rng := stats.NewRNG(4)
	var null trace.Null
	in1 := NewTensor(3, 8, 8)
	in1.FillRandom(rng)
	in2 := NewTensor(3, 8, 8)
	in2.FillRandom(rng)
	l1 := m.Infer(null, in1)
	l2 := m.Infer(null, in2)
	same := true
	for i := range l1 {
		if l1[i] != l2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different inputs produced identical logits")
	}
}

func TestConvReLUNonNegative(t *testing.T) {
	layout := trace.NewCodeLayout()
	l := layer{kind: Conv3x3, inC: 2, outC: 4, code: layout.Region("c", 1024)}
	l.weights = make([]float32, 4*2*9)
	l.bias = make([]float32, 4)
	rng := stats.NewRNG(5)
	l.initWeights(rng, 18)
	in := NewTensor(2, 6, 6)
	in.FillRandom(rng)
	var null trace.Null
	out := l.forward(null, in, true, 0x1000, 0x2000)
	if out.C != 4 || out.H != 6 || out.W != 6 {
		t.Fatalf("conv output dims %dx%dx%d", out.C, out.H, out.W)
	}
	for _, v := range out.Data {
		if v < 0 {
			t.Fatalf("ReLU output negative: %g", v)
		}
	}
}

func TestStridedConvHalves(t *testing.T) {
	layout := trace.NewCodeLayout()
	l := layer{kind: StridedConv3x3, inC: 1, outC: 2, code: layout.Region("c", 1024)}
	l.weights = make([]float32, 2*1*9)
	l.bias = make([]float32, 2)
	in := NewTensor(1, 8, 8)
	var null trace.Null
	out := l.forward(null, in, true, 0, 0)
	if out.H != 4 || out.W != 4 {
		t.Fatalf("strided conv output %dx%d, want 4x4", out.H, out.W)
	}
}

func TestMaxPoolCorrectness(t *testing.T) {
	layout := trace.NewCodeLayout()
	l := layer{kind: MaxPool2x2, inC: 1, outC: 1, code: layout.Region("p", 512)}
	in := NewTensor(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	var null trace.Null
	out := l.forward(null, in, true, 0, 0)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pool dims %dx%d", out.H, out.W)
	}
	// Max of each 2x2 block of 0..15 row-major: 5, 7, 13, 15.
	want := []float32{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("pool[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestFCKnownValues(t *testing.T) {
	layout := trace.NewCodeLayout()
	l := layer{kind: FC, inC: 3, outC: 2, code: layout.Region("f", 512)}
	l.weights = []float32{1, 2, 3, 0, -1, 1} // rows: [1 2 3], [0 -1 1]
	l.bias = []float32{0.5, 0}
	in := &Tensor{C: 3, H: 1, W: 1, Data: []float32{1, 1, 2}}
	var null trace.Null
	out := l.forward(null, in, false, 0, 0)
	if out.Data[0] != 9.5 || out.Data[1] != 1 {
		t.Fatalf("fc = %v, want [9.5 1]", out.Data)
	}
}

func TestInferEmitsWeightTraffic(t *testing.T) {
	m := Build(tinySpec(), trace.NewCodeLayout(), 9)
	in := NewTensor(3, 8, 8)
	rng := stats.NewRNG(10)
	in.FillRandom(rng)
	rec := trace.NewRecorder()
	m.Infer(rec, in)
	if rec.LoadBytes < m.WeightBytes() {
		t.Fatalf("weight streaming incomplete: %d loaded vs %d weights", rec.LoadBytes, m.WeightBytes())
	}
	if !rec.DistinctRegions["nn.conv3x3_kernel"] || !rec.DistinctRegions["nn.gemm_kernel"] {
		t.Fatalf("missing kernel regions: %v", rec.DistinctRegions)
	}
}

func TestSynthesizeStructure(t *testing.T) {
	spec := Synthesize(SynthParams{
		Conv: 6, StridedConv: 2, MaxPool: 1, FC: 2, FirstChan: 16, InputHW: 16, Classes: 50,
	})
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[LayerKind]int{}
	lastConvIdx, firstFCIdx := -1, -1
	for i, l := range spec.Layers {
		counts[l.Kind]++
		if l.Kind != FC {
			lastConvIdx = i
		} else if firstFCIdx < 0 {
			firstFCIdx = i
		}
	}
	if counts[Conv3x3] != 6 || counts[StridedConv3x3] != 2 || counts[MaxPool2x2] != 1 || counts[FC] != 2 {
		t.Fatalf("layer counts %v", counts)
	}
	if firstFCIdx < lastConvIdx {
		t.Fatal("FC layers not at the end")
	}
	if spec.Layers[0].OutChannels != 16 {
		t.Fatalf("first channels = %d", spec.Layers[0].OutChannels)
	}
}

func TestSynthesizeChannelDoubling(t *testing.T) {
	spec := Synthesize(SynthParams{
		Conv: 4, StridedConv: 2, FC: 1, FirstChan: 8, InputHW: 32,
	})
	maxC := 0
	for _, l := range spec.Layers {
		if l.OutChannels > maxC {
			maxC = l.OutChannels
		}
	}
	if maxC < 16 {
		t.Fatalf("channels never doubled: max %d", maxC)
	}
}

func TestSynthesizeDropsExcessDownsamples(t *testing.T) {
	// A tiny input cannot absorb many downsamples; Synthesize must not
	// produce sub-1x1 spatial stages.
	spec := Synthesize(SynthParams{
		Conv: 2, StridedConv: 8, MaxPool: 8, FC: 1, FirstChan: 4, InputHW: 8,
	})
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	m := Build(spec, trace.NewCodeLayout(), 11)
	in := NewTensor(3, 8, 8)
	var null trace.Null
	if got := m.Infer(null, in); len(got) != 100 {
		t.Fatalf("logits = %d", len(got))
	}
}

func TestWeightBytesScalesWithChannels(t *testing.T) {
	w := func(firstChan int) int {
		spec := Synthesize(SynthParams{Conv: 6, StridedConv: 1, FC: 1, FirstChan: firstChan, InputHW: 16})
		return Build(spec, trace.NewCodeLayout(), 12).WeightBytes()
	}
	if w(64) < 8*w(8) {
		t.Fatalf("weight footprint lever too weak: %d vs %d", w(8), w(64))
	}
}

func TestPresetsBuildAndRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec NetSpec
	}{
		{"resnet50", ResNet50Target()},
		{"shufflenet", ShuffleNetDefault()},
		{"autoencoder", AutoencoderTarget()},
	} {
		if err := tc.spec.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		m := Build(tc.spec, trace.NewCodeLayout(), 13)
		in := NewTensor(tc.spec.InputC, tc.spec.InputHW, tc.spec.InputHW)
		rng := stats.NewRNG(14)
		in.FillRandom(rng)
		var null trace.Null
		if logits := m.Infer(null, in); len(logits) != tc.spec.Classes {
			t.Fatalf("%s: %d logits", tc.name, len(logits))
		}
	}
}

func TestServerHandle(t *testing.T) {
	s := New(tinySpec(), trace.NewCodeLayout(), 15)
	rng := stats.NewRNG(16)
	rec := trace.NewRecorder()
	for i := 0; i < 5; i++ {
		s.Handle(rec, rng)
	}
	if s.Model().Inferences() != 5 {
		t.Fatalf("inferences = %d", s.Model().Inferences())
	}
	req, resp := s.LastMessageSizes()
	if req <= 0 || resp <= 0 {
		t.Fatalf("message sizes %d/%d", req, resp)
	}
	if s.Name() != "dnn" {
		t.Fatalf("name = %q", s.Name())
	}
	ae := NewAutoencoderServer(trace.NewCodeLayout(), 17)
	if ae.Name() != "img-dnn" {
		t.Fatalf("autoencoder name = %q", ae.Name())
	}
	ae.Handle(trace.NewRecorder(), rng)
}

func TestTensorHelpers(t *testing.T) {
	ten := NewTensor(2, 3, 4)
	ten.Set(1, 2, 3, 5)
	if ten.At(1, 2, 3) != 5 {
		t.Fatal("At/Set broken")
	}
	if ten.Len() != 24 || ten.Bytes() != 96 {
		t.Fatalf("Len/Bytes = %d/%d", ten.Len(), ten.Bytes())
	}
	if argmax([]float32{1, 5, 3}) != 1 {
		t.Fatal("argmax broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewTensor(0,1,1) did not panic")
		}
	}()
	NewTensor(0, 1, 1)
}

func TestLayerKindString(t *testing.T) {
	for _, k := range []LayerKind{Conv3x3, StridedConv3x3, MaxPool2x2, FC, LayerKind(42)} {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", int(k))
		}
	}
}
