package searchidx

import (
	"math"
	"testing"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

func tinyCorpus() CorpusConfig {
	return CorpusConfig{
		NumDocs:   2000,
		NumTerms:  800,
		DocLength: stats.Normal{Mu: 800, Sigma: 100, Min: 64},
		DFSkew:    0.9,
		MaxDF:     0.2,
	}
}

func TestBuildCorpusShape(t *testing.T) {
	ix, err := BuildCorpus(tinyCorpus(), trace.NewCodeLayout(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumDocs() != 2000 || ix.NumTerms() != 800 {
		t.Fatalf("corpus %d docs / %d terms", ix.NumDocs(), ix.NumTerms())
	}
	// DF must decay with term rank and respect the cap.
	cap := int(0.2 * 2000)
	if df := ix.DocFreq(0); df > cap {
		t.Fatalf("rank-0 DF %d exceeds cap %d", df, cap)
	}
	if ix.DocFreq(0) <= ix.DocFreq(700) {
		t.Fatalf("DF does not decay: rank0=%d rank700=%d", ix.DocFreq(0), ix.DocFreq(700))
	}
	// Every term has at least one posting.
	for r := 0; r < 800; r++ {
		if ix.DocFreq(uint32(r)) < 1 {
			t.Fatalf("term %d has empty posting list", r)
		}
	}
}

func TestSearchReturnsRelevantDocs(t *testing.T) {
	ix := NewIndex(trace.NewCodeLayout())
	for i := 0; i < 10; i++ {
		ix.AddDocument(500)
	}
	t0 := ix.AddTerm()
	t1 := ix.AddTerm()
	ix.AddPosting(t0, 3, 5)
	ix.AddPosting(t0, 7, 1)
	ix.AddPosting(t1, 7, 2)
	ix.Finalize()

	var null trace.Null
	res := ix.Search(null, []uint32{t0}, 5)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].DocID != 3 {
		t.Fatalf("top hit = doc %d, want 3 (higher tf)", res[0].DocID)
	}
	if res[0].Score <= res[1].Score {
		t.Fatal("results not sorted by score")
	}
	// Multi-term union: doc 7 matches both terms and must win.
	res = ix.Search(null, []uint32{t0, t1}, 5)
	if res[0].DocID != 7 {
		t.Fatalf("multi-term top hit = doc %d, want 7", res[0].DocID)
	}
}

func TestSearchTopKBound(t *testing.T) {
	ix, _ := BuildCorpus(tinyCorpus(), trace.NewCodeLayout(), 2)
	var null trace.Null
	res := ix.Search(null, []uint32{0}, 5) // rank-0 term has many postings
	if len(res) != 5 {
		t.Fatalf("topk returned %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not in descending score order")
		}
	}
	// Unknown terms are ignored gracefully.
	if out := ix.Search(null, []uint32{99999}, 5); len(out) != 0 {
		t.Fatalf("unknown term returned %d results", len(out))
	}
}

func TestBM25PrefersShorterDocsAtEqualTF(t *testing.T) {
	ix := NewIndex(trace.NewCodeLayout())
	short := ix.AddDocument(100)
	long := ix.AddDocument(5000)
	term := ix.AddTerm()
	ix.AddPosting(term, short, 3)
	ix.AddPosting(term, long, 3)
	ix.Finalize()
	var null trace.Null
	res := ix.Search(null, []uint32{term}, 2)
	if res[0].DocID != short {
		t.Fatal("BM25 length normalization missing: long doc ranked first")
	}
}

func TestSearchEmitsPostingTraffic(t *testing.T) {
	ix, _ := BuildCorpus(tinyCorpus(), trace.NewCodeLayout(), 3)
	rec := trace.NewRecorder()
	ix.Search(rec, []uint32{0, 1}, 8)
	df := ix.DocFreq(0) + ix.DocFreq(1)
	if rec.LoadBytes < df*postingBytes {
		t.Fatalf("posting loads %d bytes < %d postings worth", rec.LoadBytes, df)
	}
	if !rec.DistinctRegions["xap.bm25_scorer"] || !rec.DistinctRegions["xap.snippet_gen"] {
		t.Fatalf("missing code regions: %v", rec.DistinctRegions)
	}
	if rec.Branches == 0 {
		t.Fatal("no top-k branches")
	}
}

func TestCorpusValidate(t *testing.T) {
	good := tinyCorpus()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CorpusConfig{
		{NumDocs: 0, NumTerms: 10, DocLength: good.DocLength, MaxDF: 0.1},
		{NumDocs: 10, NumTerms: 0, DocLength: good.DocLength, MaxDF: 0.1},
		{NumDocs: 10, NumTerms: 10, MaxDF: 0.1},
		{NumDocs: 10, NumTerms: 10, DocLength: good.DocLength, MaxDF: 0},
		{NumDocs: 10, NumTerms: 10, DocLength: good.DocLength, MaxDF: 2},
		{NumDocs: 10, NumTerms: 10, DocLength: good.DocLength, MaxDF: 0.5, DFSkew: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad corpus %d validated", i)
		}
	}
}

func serverConfig() Config {
	return Config{
		Corpus:        tinyCorpus(),
		QuerySkew:     0.9,
		QueryMaxDF:    0.1,
		TermsPerQuery: 2,
		TopK:          6,
	}
}

func TestServerQueries(t *testing.T) {
	s := New(serverConfig(), trace.NewCodeLayout(), 4)
	rng := stats.NewRNG(5)
	var null trace.Null
	for i := 0; i < 300; i++ {
		s.Handle(null, rng)
	}
	q, nonEmpty := s.Stats()
	if q != 300 {
		t.Fatalf("queries = %d", q)
	}
	if nonEmpty < 250 {
		t.Fatalf("only %d/300 queries returned results", nonEmpty)
	}
	req, resp := s.LastMessageSizes()
	if req <= 0 || resp <= 0 {
		t.Fatalf("message sizes %d/%d", req, resp)
	}
}

func TestQueryMaxDFRestrictsTerms(t *testing.T) {
	loose := New(serverConfig(), trace.NewCodeLayout(), 6)
	tight := serverConfig()
	tight.QueryMaxDF = 0.005
	restricted := New(tight, trace.NewCodeLayout(), 6)
	if restricted.EligibleTerms() >= loose.EligibleTerms() {
		t.Fatalf("tighter DF cap did not shrink eligible terms: %d vs %d",
			restricted.EligibleTerms(), loose.EligibleTerms())
	}
	if restricted.EligibleTerms() == 0 {
		t.Fatal("no eligible terms")
	}
}

func TestDocLengthDrivesSnippetTraffic(t *testing.T) {
	traffic := func(mu float64) float64 {
		cfg := serverConfig()
		cfg.Corpus.DocLength = stats.Normal{Mu: mu, Sigma: mu / 20, Min: 64}
		s := New(cfg, trace.NewCodeLayout(), 7)
		rng := stats.NewRNG(8)
		rec := trace.NewRecorder()
		for i := 0; i < 100; i++ {
			s.Handle(rec, rng)
		}
		return float64(rec.LoadBytes) / 100
	}
	small := traffic(300)
	big := traffic(6000)
	if big < small*3 {
		t.Fatalf("doc length lever too weak: %.0f vs %.0f bytes/query", small, big)
	}
}

func TestServerDeterministic(t *testing.T) {
	run := func() int {
		s := New(serverConfig(), trace.NewCodeLayout(), 9)
		rng := stats.NewRNG(10)
		rec := trace.NewRecorder()
		for i := 0; i < 100; i++ {
			s.Handle(rec, rng)
		}
		return rec.Instrs
	}
	if run() != run() {
		t.Fatal("same-seed runs diverged")
	}
}

func TestPresetsValid(t *testing.T) {
	for _, c := range []Config{WikipediaTarget(), StackOverflowDefault()} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{}, trace.NewCodeLayout(), 0)
}

func TestAvgDocLengthTracked(t *testing.T) {
	ix := NewIndex(trace.NewCodeLayout())
	ix.AddDocument(100)
	ix.AddDocument(300)
	if math.Abs(ix.avgDocLn-200) > 1e-9 {
		t.Fatalf("avg doc length = %g", ix.avgDocLn)
	}
	// Degenerate length clamps to 1.
	ix.AddDocument(0)
	if ix.docs[2].length != 1 {
		t.Fatal("zero-length doc not clamped")
	}
}
