package searchidx

import (
	"fmt"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

// Config is a searchidx dataset configuration: the corpus shape plus the
// query distribution — mirroring Table III's xapian parameters (Zipfian
// skew, term frequency limit, average document length; QPS lives on the
// workload.Benchmark).
type Config struct {
	Corpus CorpusConfig
	// QuerySkew is the Zipf skew of query-term popularity.
	QuerySkew float64
	// QueryMaxDF restricts query terms to those whose document frequency is
	// at most this fraction of the corpus — the paper's "upper limit of the
	// term frequency" knob, which directly controls posting-list lengths.
	QueryMaxDF float64
	// TermsPerQuery is how many terms each query carries.
	TermsPerQuery int
	// TopK is the number of results (and snippets) per query.
	TopK int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Corpus.Validate(); err != nil {
		return err
	}
	if c.QuerySkew < 0 {
		return fmt.Errorf("searchidx: QuerySkew %g must be >= 0", c.QuerySkew)
	}
	if c.QueryMaxDF <= 0 || c.QueryMaxDF > 1 {
		return fmt.Errorf("searchidx: QueryMaxDF %g out of (0, 1]", c.QueryMaxDF)
	}
	if c.TermsPerQuery <= 0 {
		return fmt.Errorf("searchidx: TermsPerQuery must be positive, got %d", c.TermsPerQuery)
	}
	if c.TopK <= 0 {
		return fmt.Errorf("searchidx: TopK must be positive, got %d", c.TopK)
	}
	return nil
}

// Server is the search engine plus its query generator.
type Server struct {
	cfg      Config
	index    *Index
	eligible []uint32 // query-eligible terms, by popularity rank
	zipf     *stats.Zipf

	queries  int
	hits     int
	lastReq  int
	lastResp int
}

// New builds the corpus and the query model deterministically from seed.
// It panics on an invalid config.
func New(cfg Config, layout *trace.CodeLayout, seed uint64) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ix, err := BuildCorpus(cfg.Corpus, layout, seed)
	if err != nil {
		panic(err)
	}
	s := &Server{cfg: cfg, index: ix}
	// Query-eligible terms: document frequency at most QueryMaxDF.
	cap := int(cfg.QueryMaxDF * float64(ix.NumDocs()))
	if cap < 1 {
		cap = 1
	}
	for t := 0; t < ix.NumTerms(); t++ {
		if ix.DocFreq(uint32(t)) <= cap {
			s.eligible = append(s.eligible, uint32(t))
		}
	}
	if len(s.eligible) == 0 {
		// Degenerate cap: fall back to the rarest term so queries still run.
		s.eligible = append(s.eligible, uint32(ix.NumTerms()-1))
	}
	if cfg.QuerySkew > 0 {
		s.zipf = stats.NewZipf(len(s.eligible), cfg.QuerySkew)
	}
	return s
}

// Name implements workload.Server.
func (s *Server) Name() string { return "xapian" }

// Index exposes the underlying index (tests and examples).
func (s *Server) Index() *Index { return s.index }

// EligibleTerms returns how many terms the query generator may draw.
func (s *Server) EligibleTerms() int { return len(s.eligible) }

// Handle services one search query.
func (s *Server) Handle(col trace.Collector, rng *stats.RNG) {
	s.queries++
	terms := make([]uint32, s.cfg.TermsPerQuery)
	for i := range terms {
		var rank int
		if s.zipf != nil {
			rank = s.zipf.Sample(rng)
		} else {
			rank = rng.IntN(len(s.eligible))
		}
		terms[i] = s.eligible[rank]
	}
	s.lastReq = 40 + 12*len(terms)
	results := s.index.Search(col, terms, s.cfg.TopK)
	if len(results) > 0 {
		s.hits++
	}
	respBytes := 64
	for _, r := range results {
		respBytes += 48 + s.index.docs[r.DocID].length/16 // snippet excerpt
	}
	s.lastResp = respBytes
}

// WarmDataset implements workload.Warmable.
func (s *Server) WarmDataset(col trace.Collector) { s.index.WarmScan(col) }

// LastMessageSizes implements workload.Sizer.
func (s *Server) LastMessageSizes() (req, resp int) { return s.lastReq, s.lastResp }

// Stats returns query counters.
func (s *Server) Stats() (queries, nonEmpty int) { return s.queries, s.hits }

// WikipediaTarget models the paper's xapian target: Tailbench's default
// input, an index of the 2013 English Wikipedia dump with a Zipfian query
// distribution — long, heavy-tailed documents and a moderately skewed
// query mix.
func WikipediaTarget() Config {
	return Config{
		Corpus: CorpusConfig{
			NumDocs:   50_000,
			NumTerms:  24_000,
			DocLength: stats.LogNormal{Mu: 7.9, Sigma: 0.8}, // median ~2.7 KB
			DFSkew:    0.85,
			MaxDF:     0.20,
		},
		QuerySkew:     0.9,
		QueryMaxDF:    0.08,
		TermsPerQuery: 2,
		TopK:          8,
	}
}

// WikipediaQPS is the offered load of the xapian target.
const WikipediaQPS = 4_000

// StackOverflowDefault models the alternative public dataset (a
// StackOverflow dump subset): shorter documents and a flatter query mix.
func StackOverflowDefault() Config {
	return Config{
		Corpus: CorpusConfig{
			NumDocs:   25_000,
			NumTerms:  16_000,
			DocLength: stats.LogNormal{Mu: 6.4, Sigma: 0.6}, // median ~600 B
			DFSkew:    0.9,
			MaxDF:     0.15,
		},
		QuerySkew:     0.5,
		QueryMaxDF:    0.12,
		TermsPerQuery: 3,
		TopK:          8,
	}
}

// StackOverflowQPS is the offered load used with the public dataset.
const StackOverflowQPS = 6_000
