package searchidx

import (
	"testing"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

// TestIDFOrdersRareTermsFirst: at equal term frequency and document
// length, a document matching a rare term must outscore one matching a
// common term.
func TestIDFOrdersRareTermsFirst(t *testing.T) {
	ix := NewIndex(trace.NewCodeLayout())
	for i := 0; i < 100; i++ {
		ix.AddDocument(500)
	}
	rare := ix.AddTerm()
	common := ix.AddTerm()
	ix.AddPosting(rare, 0, 3)
	for d := uint32(1); d < 60; d++ {
		ix.AddPosting(common, d, 3)
	}
	ix.Finalize()
	var null trace.Null
	res := ix.Search(null, []uint32{rare, common}, 100)
	if len(res) == 0 || res[0].DocID != 0 {
		t.Fatalf("rare-term document not ranked first: %+v", res[:minInt(3, len(res))])
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSearchScoresDeterministic: identical corpora and queries yield
// bit-identical rankings and scores.
func TestSearchScoresDeterministic(t *testing.T) {
	build := func() *Index {
		ix, err := BuildCorpus(tinyCorpus(), trace.NewCodeLayout(), 77)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	a, b := build(), build()
	var null trace.Null
	ra := a.Search(null, []uint32{0, 5, 9}, 10)
	rb := b.Search(null, []uint32{0, 5, 9}, 10)
	if len(ra) != len(rb) {
		t.Fatalf("result counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

// TestQuerySkewConcentratesTerms: higher skew concentrates query traffic on
// the hottest eligible terms — shrinking the effective posting working set,
// the cache-behavior lever Table III exposes.
func TestQuerySkewConcentratesTerms(t *testing.T) {
	distinct := func(skew float64) int {
		cfg := serverConfig()
		cfg.QuerySkew = skew
		s := New(cfg, trace.NewCodeLayout(), 78)
		rng := stats.NewRNG(79)
		seen := map[uint32]bool{}
		var null trace.Null
		for i := 0; i < 400; i++ {
			s.Handle(null, rng)
		}
		_ = seen
		q, _ := s.Stats()
		if q != 400 {
			t.Fatalf("queries = %d", q)
		}
		// Approximate concentration via traced bytes: hot terms cache the
		// same postings, so we compare distinct terms drawn directly.
		rng2 := stats.NewRNG(80)
		for i := 0; i < 1000; i++ {
			var rank int
			if s.zipf != nil {
				rank = s.zipf.Sample(rng2)
			} else {
				rank = rng2.IntN(len(s.eligible))
			}
			seen[s.eligible[rank]] = true
		}
		return len(seen)
	}
	flat := distinct(0)
	skewed := distinct(1.3)
	if skewed >= flat {
		t.Fatalf("skew did not concentrate terms: %d vs %d distinct", skewed, flat)
	}
}

// TestWarmScanTouchesIndexAndDocs: the warm pass streams both posting
// storage and document storage.
func TestWarmScanTouchesIndexAndDocs(t *testing.T) {
	ix, err := BuildCorpus(tinyCorpus(), trace.NewCodeLayout(), 81)
	if err != nil {
		t.Fatal(err)
	}
	var docBytes int
	for _, d := range ix.docs {
		docBytes += d.length
	}
	var postingCount int
	for i := range ix.terms {
		postingCount += len(ix.terms[i].postings)
	}
	rec := trace.NewRecorder()
	ix.WarmScan(rec)
	want := docBytes + postingCount*postingBytes
	if rec.LoadBytes != want {
		t.Fatalf("warm scan loaded %d bytes, want %d", rec.LoadBytes, want)
	}
}
