// Package searchidx implements the xapian-like search engine used by the
// xapian workload: a real inverted index with BM25 ranking over synthetic
// documents. Query processing walks posting lists (streaming loads over
// simulated posting storage), scores every posting with actual BM25
// arithmetic, maintains a top-k heap with data-dependent branches, and
// fetches the winning documents for snippet generation — the structure the
// paper exploits when it parameterizes the dataset by document length,
// query-term frequency, and Zipfian query skew (Table III).
package searchidx

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"datamime/internal/memsim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

// Posting is one (document, term-frequency) pair in a posting list.
type Posting struct {
	DocID uint32
	TF    uint16
}

// postingBytes is the simulated size of one posting (docid + tf + skip
// metadata).
const postingBytes = 8

// termInfo is one term's posting list plus its simulated storage.
type termInfo struct {
	postings []Posting
	addr     uint64
}

// docInfo is one document's length and simulated content address.
type docInfo struct {
	length int
	addr   uint64
}

// Index is an inverted index over synthetic documents.
type Index struct {
	heap     *memsim.Heap
	terms    []termInfo
	docs     []docInfo
	avgDocLn float64

	code indexCode
}

// indexCode holds the engine's text regions.
type indexCode struct {
	parse    *trace.CodeRegion
	planner  *trace.CodeRegion
	postings *trace.CodeRegion
	scorer   *trace.CodeRegion
	topk     *trace.CodeRegion
	snippet  *trace.CodeRegion
	stemmer  *trace.CodeRegion
}

// NewIndex builds an empty index with capacity hints.
func NewIndex(layout *trace.CodeLayout) *Index {
	return &Index{
		heap: memsim.NewHeap(),
		code: indexCode{
			parse:    layout.Region("xap.parse_query", 4<<10),
			planner:  layout.Region("xap.query_planner", 5<<10),
			postings: layout.Region("xap.postlist_walk", 7<<10),
			scorer:   layout.Region("xap.bm25_scorer", 6<<10),
			topk:     layout.Region("xap.topk_heap", 3<<10),
			snippet:  layout.Region("xap.snippet_gen", 5<<10),
			stemmer:  layout.Region("xap.stemmer", 4<<10),
		},
	}
}

// AddDocument registers a document of the given byte length and returns its
// id. Terms are attached via AddPosting during corpus construction.
func (ix *Index) AddDocument(length int) uint32 {
	if length < 1 {
		length = 1
	}
	id := uint32(len(ix.docs))
	ix.docs = append(ix.docs, docInfo{length: length, addr: ix.heap.Alloc(length)})
	n := float64(len(ix.docs))
	ix.avgDocLn += (float64(length) - ix.avgDocLn) / n
	return id
}

// AddTerm registers a term and returns its id.
func (ix *Index) AddTerm() uint32 {
	ix.terms = append(ix.terms, termInfo{})
	return uint32(len(ix.terms) - 1)
}

// AddPosting appends (doc, tf) to term's posting list. Postings must be
// appended in increasing doc order (the corpus builder guarantees this).
func (ix *Index) AddPosting(term, doc uint32, tf uint16) {
	t := &ix.terms[term]
	t.postings = append(t.postings, Posting{DocID: doc, TF: tf})
}

// Finalize allocates simulated storage for every posting list; call once
// after corpus construction.
func (ix *Index) Finalize() {
	for i := range ix.terms {
		t := &ix.terms[i]
		if n := len(t.postings); n > 0 {
			t.addr = ix.heap.Alloc(n * postingBytes)
		}
	}
}

// NumDocs returns the corpus size.
func (ix *Index) NumDocs() int { return len(ix.docs) }

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// DocFreq returns a term's document frequency.
func (ix *Index) DocFreq(term uint32) int { return len(ix.terms[term].postings) }

// Result is one ranked search hit.
type Result struct {
	DocID uint32
	Score float64
}

// resultHeap is a min-heap on score, holding the current top-k.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BM25 constants.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Search scores the union of the query terms' posting lists with BM25 and
// returns the top k results, best first. All traversal, scoring, heap, and
// snippet work is emitted into col.
func (ix *Index) Search(col trace.Collector, queryTerms []uint32, k int) []Result {
	if k <= 0 {
		k = 10
	}
	col.Exec(ix.code.parse, 900+120*len(queryTerms))
	col.Exec(ix.code.stemmer, 250*len(queryTerms))
	col.Exec(ix.code.planner, 800)

	n := float64(len(ix.docs))
	scores := make(map[uint32]float64)
	for qi, term := range queryTerms {
		if int(term) >= len(ix.terms) {
			continue
		}
		t := &ix.terms[term]
		df := float64(len(t.postings))
		col.Branch(ix.code.planner.Base+uint64(qi%3), df > 0)
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (n-df+0.5)/(df+0.5))
		col.Exec(ix.code.postings, 120)
		for pi, p := range t.postings {
			// Stream posting storage in 64-posting blocks.
			if pi%64 == 0 {
				chunk := (len(t.postings) - pi) * postingBytes
				if chunk > 64*postingBytes {
					chunk = 64 * postingBytes
				}
				col.Load(t.addr+uint64(pi*postingBytes), chunk)
				col.Exec(ix.code.postings, 90)
			}
			tf := float64(p.TF)
			dl := float64(ix.docs[p.DocID].length)
			score := idf * (tf * (bm25K1 + 1)) / (tf + bm25K1*(1-bm25B+bm25B*dl/ix.avgDocLn))
			scores[p.DocID] += score
			col.Ops(14)
		}
		col.Exec(ix.code.scorer, 40+len(t.postings)/4)
	}

	// Top-k selection with a bounded min-heap; the "does this beat the
	// heap minimum" branch is the classic data-dependent branch of search.
	h := make(resultHeap, 0, k)
	col.Exec(ix.code.topk, 500)
	// Iterate accumulators in doc order for determinism.
	ids := make([]uint32, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		s := scores[id]
		beats := len(h) < k || s > h[0].Score
		col.Branch(ix.code.topk.Base+uint64(i%5), beats)
		col.Ops(6)
		if !beats {
			continue
		}
		if len(h) >= k {
			heap.Pop(&h)
		}
		heap.Push(&h, Result{DocID: id, Score: s})
	}
	out := make([]Result, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Result)
	}

	// Snippet generation: fetch and scan the winning documents; the
	// term-boundary decisions depend on document content, so repeated hot
	// documents train the predictor while cold ones do not.
	for _, r := range out {
		d := ix.docs[r.DocID]
		col.Exec(ix.code.snippet, 600+d.length/12)
		col.Load(d.addr, d.length)
		sig := uint64(r.DocID) * 0x9e3779b97f4a7c15
		for i := 0; i < 4+d.length/256; i++ {
			col.Branch(ix.code.snippet.Base+uint64(i%5), (sig>>uint(i%32))&1 == 1)
		}
	}
	return out
}

// WarmScan touches every posting list and document once (an index held in
// the page cache of a long-running search node).
func (ix *Index) WarmScan(col trace.Collector) {
	for i := range ix.terms {
		t := &ix.terms[i]
		if n := len(t.postings); n > 0 {
			col.Load(t.addr, n*postingBytes)
		}
	}
	for i := range ix.docs {
		col.Load(ix.docs[i].addr, ix.docs[i].length)
	}
}

// Heap exposes the simulated heap (tests).
func (ix *Index) Heap() *memsim.Heap { return ix.heap }

// CorpusConfig controls synthetic corpus construction.
type CorpusConfig struct {
	// NumDocs and NumTerms size the corpus and vocabulary.
	NumDocs, NumTerms int
	// DocLength draws each document's byte length.
	DocLength stats.Distribution
	// DFSkew shapes the Zipfian decay of document frequency across term
	// ranks (natural corpora are near 1).
	DFSkew float64
	// MaxDF caps any term's document frequency as a fraction of NumDocs.
	MaxDF float64
}

// Validate reports configuration errors.
func (c CorpusConfig) Validate() error {
	if c.NumDocs <= 0 || c.NumTerms <= 0 {
		return fmt.Errorf("searchidx: corpus needs positive docs/terms, got %d/%d", c.NumDocs, c.NumTerms)
	}
	if c.DocLength == nil {
		return fmt.Errorf("searchidx: corpus needs a document length distribution")
	}
	if c.MaxDF <= 0 || c.MaxDF > 1 {
		return fmt.Errorf("searchidx: MaxDF %g out of (0, 1]", c.MaxDF)
	}
	if c.DFSkew < 0 {
		return fmt.Errorf("searchidx: DFSkew %g must be >= 0", c.DFSkew)
	}
	return nil
}

// BuildCorpus constructs a synthetic corpus: documents with the configured
// length distribution and terms whose document frequencies decay Zipf-like
// with term rank, capped at MaxDF.
func BuildCorpus(cfg CorpusConfig, layout *trace.CodeLayout, seed uint64) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(stats.HashSeed(seed, "corpus"))
	ix := NewIndex(layout)
	for i := 0; i < cfg.NumDocs; i++ {
		l := int(cfg.DocLength.Sample(rng))
		ix.AddDocument(l)
	}
	maxDF := int(cfg.MaxDF * float64(cfg.NumDocs))
	if maxDF < 1 {
		maxDF = 1
	}
	for r := 0; r < cfg.NumTerms; r++ {
		term := ix.AddTerm()
		df := int(float64(maxDF) / math.Pow(float64(r+1), cfg.DFSkew))
		if df < 1 {
			df = 1
		}
		// Sample df distinct documents via a stride walk (cheap, spreads
		// postings across the corpus, keeps doc order increasing).
		stride := cfg.NumDocs / df
		if stride < 1 {
			stride = 1
		}
		start := rng.IntN(stride)
		for d := start; d < cfg.NumDocs && ix.DocFreq(term) < df; d += stride {
			tf := uint16(1 + rng.IntN(8))
			ix.AddPosting(term, uint32(d), tf)
		}
	}
	ix.Finalize()
	return ix, nil
}
