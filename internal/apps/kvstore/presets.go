package kvstore

import "datamime/internal/stats"

// The preset configurations below define the paper's memcached target
// workloads and the alternative public dataset. Targets are *hidden* from
// the search: Datamime only ever sees their performance profiles.

// FacebookTarget models the mem-fb target: a dataset representative of
// Facebook's production environment (Atikoglu et al.). Small keys, a
// generalized-Pareto value-size distribution, a GET-dominated mix, strong
// popularity skew, and background churn.
func FacebookTarget() Config {
	return Config{
		NumKeys:        110_000,
		KeySize:        stats.Normal{Mu: 31, Sigma: 9, Min: 8},
		ValueSize:      stats.GPareto{Loc: 16, Scale: 220, Shape: 0.25},
		GetRatio:       0.97,
		PopularitySkew: 1.05,
		ChurnProb:      0.15,
		CrawlEvery:     600,
		CrawlItems:     400,
		// Social-graph payloads compress well (~2.3x snapshot ratio).
		ValueEntropy: 3.2,
	}
}

// FacebookQPS is the offered load of the mem-fb target.
const FacebookQPS = 160_000

// TwitterTarget models the mem-twtr target: an anonymized Twemcache-like
// trace (Yang et al., OSDI'20). Twemcache clusters skew toward smaller
// objects, higher write ratios, and moderate popularity skew.
func TwitterTarget() Config {
	return Config{
		NumKeys:        160_000,
		KeySize:        stats.LogNormal{Mu: 3.4, Sigma: 0.5}, // median ~30 B
		ValueSize:      stats.LogNormal{Mu: 4.6, Sigma: 0.9}, // median ~100 B
		GetRatio:       0.82,
		PopularitySkew: 0.85,
		ChurnProb:      0.25,
		CrawlEvery:     900,
		CrawlItems:     300,
	}
}

// TwitterQPS is the offered load of the mem-twtr target.
const TwitterQPS = 200_000

// TailbenchDefault models the public dataset the paper contrasts against in
// Figs. 1 and 3: Tailbench's default YCSB-style driver — uniform key
// popularity, fixed-ish small keys, large uniform values, and a 50/50
// read/write mix. Running memcached with this dataset behaves very
// differently from the production targets.
func TailbenchDefault() Config {
	return Config{
		NumKeys:        40_000,
		KeySize:        stats.Normal{Mu: 23, Sigma: 2, Min: 16},
		ValueSize:      stats.Normal{Mu: 1100, Sigma: 80, Min: 512},
		GetRatio:       0.5,
		PopularitySkew: 0, // uniform
		ChurnProb:      0,
		CrawlEvery:     0,
	}
}

// TailbenchQPS is the offered load used with the public dataset.
const TailbenchQPS = 60_000
