package kvstore

import (
	"fmt"

	"datamime/internal/memsim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

// Config is a kvstore dataset configuration — the knobs Datamime's
// memcached dataset generator exposes (Table III: get/set ratio and the
// key/value size distributions; QPS lives on the workload.Benchmark), plus
// the hidden characteristics real traces have (key popularity skew, churn)
// that the *target* configurations use but the generator does not expose.
type Config struct {
	// NumKeys is the number of resident items after population.
	NumKeys int
	// KeySize and ValueSize are the size distributions. The generator
	// assumes Gaussians; targets may use any family (mem-fb uses a
	// generalized Pareto for values, per Atikoglu et al.).
	KeySize   stats.Distribution
	ValueSize stats.Distribution
	// GetRatio is the fraction of GET requests; the rest are SETs.
	GetRatio float64
	// PopularitySkew is the Zipfian skew of key popularity (0 = uniform).
	PopularitySkew float64
	// ChurnProb is the probability that a SET creates a brand-new key,
	// forcing allocation churn and LRU evictions against the memory budget.
	ChurnProb float64
	// CrawlEvery runs the LRU-crawler maintenance pass every N requests
	// (0 disables; targets use it to create activity phases).
	CrawlEvery int
	// CrawlItems is how many entries one crawler pass scans.
	CrawlItems int
	// ValueEntropy is the information density of value bytes in bits per
	// byte, in (0, 8]. 0 means 8 (incompressible synthetic bytes). It does
	// not change microarchitectural behavior — only the snapshot
	// compression ratio the §III-D extension profiles and matches.
	ValueEntropy float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumKeys <= 0 {
		return fmt.Errorf("kvstore: NumKeys must be positive, got %d", c.NumKeys)
	}
	if c.KeySize == nil || c.ValueSize == nil {
		return fmt.Errorf("kvstore: key and value size distributions are required")
	}
	if c.GetRatio < 0 || c.GetRatio > 1 {
		return fmt.Errorf("kvstore: GetRatio %g out of [0, 1]", c.GetRatio)
	}
	if c.ChurnProb < 0 || c.ChurnProb > 1 {
		return fmt.Errorf("kvstore: ChurnProb %g out of [0, 1]", c.ChurnProb)
	}
	if c.PopularitySkew < 0 {
		return fmt.Errorf("kvstore: PopularitySkew %g must be >= 0", c.PopularitySkew)
	}
	if c.ValueEntropy < 0 || c.ValueEntropy > 8 {
		return fmt.Errorf("kvstore: ValueEntropy %g out of (0, 8]", c.ValueEntropy)
	}
	return nil
}

// keyMeta is the client-side view of one key.
type keyMeta struct {
	size int
}

// Server is the memcached-like request server: a Store populated from a
// Config, plus the request parsing/response code paths.
type Server struct {
	cfg    Config
	store  *Store
	keys   []keyMeta
	perm   []int // popularity rank -> key index
	zipf   *stats.Zipf
	budget uint64

	parse   *trace.CodeRegion
	respond *trace.CodeRegion
	proto   *trace.CodeRegion
	rxBuf   uint64
	txBuf   uint64

	reqCount  int
	lastReq   int
	lastResp  int
	hits      int
	gets      int
	sets      int
	nextNewID uint64
}

// bufBytes is the size of the rx/tx message buffers.
const bufBytes = 64 << 10

// New builds and populates a server. The dataset (sizes, popularity
// permutation) derives deterministically from seed. It panics on an invalid
// config — configs are validated where they are built.
func New(cfg Config, layout *trace.CodeLayout, seed uint64) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	popRNG := stats.NewRNG(stats.HashSeed(seed, "kv-populate"))
	buckets := cfg.NumKeys
	if buckets < 1024 {
		buckets = 1024
	}
	st := NewStore(buckets, layout)
	s := &Server{
		cfg:     cfg,
		store:   st,
		keys:    make([]keyMeta, cfg.NumKeys),
		parse:   layout.Region("kv.parse_command", 5<<10),
		respond: layout.Region("kv.build_response", 4<<10),
		proto:   layout.Region("kv.proto_dispatch", 3<<10),
		rxBuf:   st.heap.Alloc(bufBytes),
		txBuf:   st.heap.Alloc(bufBytes),
	}
	if cfg.PopularitySkew > 0 {
		s.zipf = stats.NewZipf(cfg.NumKeys, cfg.PopularitySkew)
	}
	s.perm = popRNG.Perm(cfg.NumKeys)

	var null trace.Null
	for id := 0; id < cfg.NumKeys; id++ {
		ks := sizeAtLeast(cfg.KeySize.Sample(popRNG), 4)
		vs := sizeAtLeast(cfg.ValueSize.Sample(popRNG), 1)
		s.keys[id] = keyMeta{size: ks}
		st.Set(null, uint64(id), ks, vs, popRNG.Uint64(), 0)
	}
	s.nextNewID = uint64(cfg.NumKeys)
	// Memory budget: modest headroom above the populated footprint, so
	// churn triggers evictions like a sized memcached instance.
	s.budget = st.LiveBytes() + st.LiveBytes()/8
	return s
}

// Name implements workload.Server.
func (s *Server) Name() string { return "memcached" }

// Store exposes the underlying store (tests and examples).
func (s *Server) Store() *Store { return s.store }

// Handle services one request: draw a key by popularity, dispatch GET or
// SET, and build the response.
func (s *Server) Handle(col trace.Collector, rng *stats.RNG) {
	s.reqCount++
	id, keySize := s.pickKey(rng)

	col.Exec(s.proto, 520)
	isGet := rng.Bool(s.cfg.GetRatio)
	col.Branch(s.proto.Base, isGet)
	// Key-dependent parse/validation branches: tokenizing the key emits one
	// decision per chunk whose outcome depends on the key's bits. Hot keys
	// repeat their histories (predictable); uniform traffic looks random to
	// the predictor — popularity skew thus shapes branch MPKI, as in real
	// key-value serving.
	kh := hashKey(id)
	for i := 0; i < 4+keySize/8; i++ {
		col.Branch(s.parse.Base+uint64(i%6), (kh>>uint(i%32))&1 == 1)
	}

	if isGet {
		s.gets++
		s.lastReq = keySize + 24
		col.Exec(s.parse, 950+keySize/2)
		col.Load(s.rxBuf, s.lastReq)
		valSize, _, ok := s.store.Get(col, id)
		col.Branch(s.respond.Base, ok)
		if ok {
			s.hits++
			col.Exec(s.respond, 750+valSize/16)
			col.Store(s.txBuf, clampSize(valSize+32, bufBytes))
			s.lastResp = valSize + 32
		} else {
			col.Exec(s.respond, 300)
			s.lastResp = 24
		}
	} else {
		s.sets++
		valSize := sizeAtLeast(s.cfg.ValueSize.Sample(rng), 1)
		s.lastReq = keySize + valSize + 40
		col.Exec(s.parse, 1100+keySize/2)
		col.Load(s.rxBuf, clampSize(s.lastReq, bufBytes))
		s.store.Set(col, id, keySize, valSize, rng.Uint64(), s.budget)
		col.Exec(s.respond, 400)
		col.Store(s.txBuf, 16)
		s.lastResp = 16
	}

	if s.cfg.CrawlEvery > 0 && s.reqCount%s.cfg.CrawlEvery == 0 {
		n := s.cfg.CrawlItems
		if n <= 0 {
			n = 200
		}
		s.store.Crawl(col, n)
	}
}

// pickKey draws a key id by popularity. Churny SETs occasionally mint a new
// key (handled in Handle via the returned id, which Set inserts).
func (s *Server) pickKey(rng *stats.RNG) (id uint64, keySize int) {
	if s.cfg.ChurnProb > 0 && rng.Bool(s.cfg.ChurnProb) {
		id = s.nextNewID
		s.nextNewID++
		ks := sizeAtLeast(s.cfg.KeySize.Sample(rng), 4)
		return id, ks
	}
	var rank int
	if s.zipf != nil {
		rank = s.zipf.Sample(rng)
	} else {
		rank = rng.IntN(s.cfg.NumKeys)
	}
	idx := s.perm[rank]
	return uint64(idx), s.keys[idx].size
}

// WarmDataset implements workload.Warmable: touch the resident items so
// measurement starts from a warmed, steady-state cache. Popular keys are
// re-touched afterwards so the recency order matches the popularity order.
func (s *Server) WarmDataset(col trace.Collector) {
	s.store.WarmScan(col)
	// Re-touch the hottest keys (by popularity rank, coldest-first) so the
	// most popular data is the most recently cached, as in steady state.
	if s.zipf != nil {
		n := s.cfg.NumKeys / 10
		for rank := n - 1; rank >= 0; rank-- {
			s.store.Get(col, uint64(s.perm[rank]))
		}
	}
}

// LastMessageSizes implements workload.Sizer for the networked setup.
func (s *Server) LastMessageSizes() (req, resp int) { return s.lastReq, s.lastResp }

// CompressionRatio implements workload.Compressible: the snapshot ratio a
// compressor would achieve on the resident data. Values compress according
// to their configured entropy; keys (structured identifiers) compress
// about 1.5x; item headers (pointers, sizes) about 2x.
func (s *Server) CompressionRatio() float64 {
	entropy := s.cfg.ValueEntropy
	if entropy <= 0 {
		entropy = 8
	}
	keyB, valB, hdrB := s.store.FootprintBreakdown()
	orig := float64(keyB + valB + hdrB)
	if orig == 0 {
		return 1
	}
	compressed := float64(valB)*entropy/8 + float64(keyB)/1.5 + float64(hdrB)/2
	if compressed < 1 {
		compressed = 1
	}
	return orig / compressed
}

// Stats returns request counters (tests and examples).
func (s *Server) Stats() (gets, sets, hits int) { return s.gets, s.sets, s.hits }

// HitRate returns the GET hit rate observed so far.
func (s *Server) HitRate() float64 {
	if s.gets == 0 {
		return 0
	}
	return float64(s.hits) / float64(s.gets)
}

func sizeAtLeast(v float64, min int) int {
	n := int(v)
	if n < min {
		return min
	}
	return n
}

func clampSize(v, max int) int {
	if v > max {
		return max
	}
	return v
}

var _ interface {
	Name() string
	Handle(trace.Collector, *stats.RNG)
	LastMessageSizes() (int, int)
} = (*Server)(nil)

// Heap exposes the server's simulated heap for tests.
func (s *Server) Heap() *memsim.Heap { return s.store.heap }
