package kvstore

import (
	"math"
	"sort"
	"testing"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

func smallConfig() Config {
	return Config{
		NumKeys:        2000,
		KeySize:        stats.Normal{Mu: 24, Sigma: 4, Min: 8},
		ValueSize:      stats.Normal{Mu: 128, Sigma: 32, Min: 16},
		GetRatio:       0.9,
		PopularitySkew: 0.9,
		ChurnProb:      0.05,
		CrawlEvery:     100,
	}
}

func TestServerPopulation(t *testing.T) {
	s := New(smallConfig(), trace.NewCodeLayout(), 1)
	if s.Store().Len() != 2000 {
		t.Fatalf("populated %d keys", s.Store().Len())
	}
	if s.Store().LiveBytes() == 0 {
		t.Fatal("no simulated footprint")
	}
}

func TestServerDeterministicGivenSeed(t *testing.T) {
	mk := func() (int, int, int) {
		s := New(smallConfig(), trace.NewCodeLayout(), 7)
		rng := stats.NewRNG(99)
		rec := trace.NewRecorder()
		for i := 0; i < 500; i++ {
			s.Handle(rec, rng)
		}
		g, st, h := s.Stats()
		_ = rec
		return g, st, h
	}
	g1, s1, h1 := mk()
	g2, s2, h2 := mk()
	if g1 != g2 || s1 != s2 || h1 != h2 {
		t.Fatalf("same-seed runs diverged: (%d,%d,%d) vs (%d,%d,%d)", g1, s1, h1, g2, s2, h2)
	}
}

func TestServerGetRatioHonored(t *testing.T) {
	cfg := smallConfig()
	cfg.GetRatio = 0.7
	cfg.ChurnProb = 0
	s := New(cfg, trace.NewCodeLayout(), 2)
	rng := stats.NewRNG(5)
	var null trace.Null
	const n = 20000
	for i := 0; i < n; i++ {
		s.Handle(null, rng)
	}
	gets, sets, _ := s.Stats()
	frac := float64(gets) / float64(gets+sets)
	if math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("GET fraction = %.3f, want ~0.7", frac)
	}
}

func TestServerHitRateHighWithoutChurn(t *testing.T) {
	cfg := smallConfig()
	cfg.ChurnProb = 0
	s := New(cfg, trace.NewCodeLayout(), 3)
	rng := stats.NewRNG(6)
	var null trace.Null
	for i := 0; i < 5000; i++ {
		s.Handle(null, rng)
	}
	if hr := s.HitRate(); hr < 0.999 {
		t.Fatalf("hit rate without churn = %g, want ~1", hr)
	}
}

func TestServerChurnCausesEvictionsAndMisses(t *testing.T) {
	cfg := smallConfig()
	cfg.ChurnProb = 0.5
	cfg.GetRatio = 0.5
	s := New(cfg, trace.NewCodeLayout(), 4)
	rng := stats.NewRNG(7)
	var null trace.Null
	for i := 0; i < 30000; i++ {
		s.Handle(null, rng)
	}
	if hr := s.HitRate(); hr >= 0.999 {
		t.Fatalf("hit rate with heavy churn = %g, want < 1", hr)
	}
	// The budget must have held the footprint near its initial level.
	if s.Store().LiveBytes() > s.budget {
		t.Fatalf("footprint %d exceeds budget %d", s.Store().LiveBytes(), s.budget)
	}
}

func TestServerMessageSizesTrackRequests(t *testing.T) {
	s := New(smallConfig(), trace.NewCodeLayout(), 8)
	rng := stats.NewRNG(9)
	var null trace.Null
	for i := 0; i < 50; i++ {
		s.Handle(null, rng)
		req, resp := s.LastMessageSizes()
		if req <= 0 || resp <= 0 {
			t.Fatalf("non-positive message sizes: %d/%d", req, resp)
		}
	}
}

func TestValueSizeDrivesTraffic(t *testing.T) {
	// Per-request data traffic must grow with value size — a core lever of
	// the dataset generator.
	traffic := func(valMean float64) float64 {
		cfg := smallConfig()
		cfg.ValueSize = stats.Normal{Mu: valMean, Sigma: valMean / 10, Min: 16}
		cfg.ChurnProb = 0
		s := New(cfg, trace.NewCodeLayout(), 11)
		rng := stats.NewRNG(12)
		rec := trace.NewRecorder()
		for i := 0; i < 2000; i++ {
			s.Handle(rec, rng)
		}
		return float64(rec.LoadBytes+rec.StoreBytes) / 2000
	}
	small := traffic(64)
	big := traffic(2048)
	if big < small*4 {
		t.Fatalf("traffic should scale with value size: %.0f vs %.0f bytes/req", small, big)
	}
}

func TestSkewConcentratesAccesses(t *testing.T) {
	// With high skew, a small fraction of keys should absorb most GETs,
	// which is what makes skewed datasets cache-friendly.
	cfg := smallConfig()
	cfg.PopularitySkew = 1.2
	cfg.ChurnProb = 0
	cfg.GetRatio = 1.0
	s := New(cfg, trace.NewCodeLayout(), 13)
	rng := stats.NewRNG(14)
	counts := make(map[uint64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		id, _ := s.pickKey(rng)
		counts[id]++
	}
	// The hottest 20 keys (1% of the key space) should absorb a large
	// fraction of the accesses under skew 1.2.
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(top)))
	hot := 0
	for i := 0; i < 20 && i < len(top); i++ {
		hot += top[i]
	}
	if frac := float64(hot) / draws; frac < 0.3 {
		t.Fatalf("top-20 keys absorbed only %.2f of accesses under skew 1.2", frac)
	}
}

func TestServerAccessors(t *testing.T) {
	s := New(smallConfig(), trace.NewCodeLayout(), 30)
	if s.Name() != "memcached" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Heap() == nil || s.Heap().LiveBytes() == 0 {
		t.Fatal("heap accessor broken")
	}
	if s.HitRate() != 0 {
		t.Fatal("hit rate before any GET must be 0")
	}
}

func TestCompressionRatioTracksEntropy(t *testing.T) {
	mk := func(entropy float64) *Server {
		cfg := smallConfig()
		cfg.ValueEntropy = entropy
		return New(cfg, trace.NewCodeLayout(), 31)
	}
	random := mk(8).CompressionRatio()
	tight := mk(1.5).CompressionRatio()
	if tight <= random || random < 1 {
		t.Fatalf("compression ratios: entropy8=%g entropy1.5=%g", random, tight)
	}
	kb, vb, hb := mk(8).Store().FootprintBreakdown()
	if kb == 0 || vb == 0 || hb == 0 {
		t.Fatalf("footprint breakdown %d/%d/%d", kb, vb, hb)
	}
}

func TestConfigRejectsBadEntropy(t *testing.T) {
	cfg := smallConfig()
	cfg.ValueEntropy = 9
	if err := cfg.Validate(); err == nil {
		t.Fatal("entropy > 8 validated")
	}
	cfg.ValueEntropy = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative entropy validated")
	}
}

func TestServerPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{}, trace.NewCodeLayout(), 0)
}
