package kvstore

import (
	"testing"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

func newTestStore() *Store {
	return NewStore(1024, trace.NewCodeLayout())
}

func TestSetGetRoundTrip(t *testing.T) {
	s := newTestStore()
	var null trace.Null
	s.Set(null, 42, 16, 100, 0xdead, 0)
	size, fp, ok := s.Get(null, 42)
	if !ok || size != 100 || fp != 0xdead {
		t.Fatalf("Get = (%d, %#x, %v)", size, fp, ok)
	}
	if _, _, ok := s.Get(null, 43); ok {
		t.Fatal("Get of absent key succeeded")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSetReplace(t *testing.T) {
	s := newTestStore()
	var null trace.Null
	s.Set(null, 7, 16, 100, 1, 0)
	before := s.LiveBytes()
	s.Set(null, 7, 16, 200, 2, 0)
	if s.Len() != 1 {
		t.Fatalf("replace changed Len to %d", s.Len())
	}
	size, fp, ok := s.Get(null, 7)
	if !ok || size != 200 || fp != 2 {
		t.Fatalf("after replace: (%d, %d, %v)", size, fp, ok)
	}
	if s.LiveBytes() <= before {
		t.Fatal("larger value did not grow footprint")
	}
}

func TestDelete(t *testing.T) {
	s := newTestStore()
	var null trace.Null
	for i := uint64(0); i < 100; i++ {
		s.Set(null, i, 16, 64, i, 0)
	}
	if !s.Delete(null, 50) {
		t.Fatal("Delete of present key failed")
	}
	if s.Delete(null, 50) {
		t.Fatal("double Delete succeeded")
	}
	if _, _, ok := s.Get(null, 50); ok {
		t.Fatal("deleted key still present")
	}
	if s.Len() != 99 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Other keys unaffected.
	for i := uint64(0); i < 100; i++ {
		if i == 50 {
			continue
		}
		if _, _, ok := s.Get(null, i); !ok {
			t.Fatalf("key %d lost after unrelated delete", i)
		}
	}
}

func TestEvictionRespectsBudget(t *testing.T) {
	s := newTestStore()
	var null trace.Null
	// Populate without budget, then insert with a tight budget.
	for i := uint64(0); i < 500; i++ {
		s.Set(null, i, 16, 128, i, 0)
	}
	budget := s.LiveBytes() // exactly full
	for i := uint64(500); i < 600; i++ {
		s.Set(null, i, 16, 128, i, budget)
		if s.LiveBytes() > budget {
			t.Fatalf("budget exceeded: %d > %d", s.LiveBytes(), budget)
		}
	}
	if s.Len() >= 600 {
		t.Fatal("no evictions happened")
	}
	// The most recently inserted keys must be present (LRU evicts old).
	for i := uint64(590); i < 600; i++ {
		if _, _, ok := s.Get(null, i); !ok {
			t.Fatalf("recently inserted key %d was evicted", i)
		}
	}
}

func TestLRUOrderEviction(t *testing.T) {
	s := newTestStore()
	var null trace.Null
	for i := uint64(0); i < 10; i++ {
		s.Set(null, i, 16, 64, i, 0)
	}
	// Touch key 0 so it becomes MRU; key 1 is now LRU.
	s.Get(null, 0)
	budget := s.LiveBytes()
	s.Set(null, 100, 16, 64, 100, budget)
	if _, _, ok := s.Get(null, 0); !ok {
		t.Fatal("MRU key was evicted")
	}
	if _, _, ok := s.Get(null, 1); ok {
		t.Fatal("LRU key survived eviction")
	}
}

func TestEntrySlotReuse(t *testing.T) {
	s := newTestStore()
	var null trace.Null
	for i := uint64(0); i < 100; i++ {
		s.Set(null, i, 16, 64, i, 0)
	}
	slots := len(s.entries)
	for i := uint64(0); i < 50; i++ {
		s.Delete(null, i)
	}
	for i := uint64(200); i < 250; i++ {
		s.Set(null, i, 16, 64, i, 0)
	}
	if len(s.entries) != slots {
		t.Fatalf("entry slots grew from %d to %d despite free list", slots, len(s.entries))
	}
}

func TestStoreEmitsTraffic(t *testing.T) {
	s := newTestStore()
	rec := trace.NewRecorder()
	s.Set(rec, 1, 32, 4096, 9, 0)
	if rec.Stores == 0 || rec.StoreBytes < 4096 {
		t.Fatalf("Set emitted %d stores / %d bytes", rec.Stores, rec.StoreBytes)
	}
	rec2 := trace.NewRecorder()
	s.Get(rec2, 1)
	if rec2.LoadBytes < 4096 {
		t.Fatalf("Get of 4KB value loaded only %d bytes", rec2.LoadBytes)
	}
	if rec2.Branches == 0 {
		t.Fatal("Get emitted no branches")
	}
	if !rec2.DistinctRegions["kv.process_get"] {
		t.Fatal("Get did not execute the get path")
	}
}

func TestCrawlScansTail(t *testing.T) {
	s := newTestStore()
	var null trace.Null
	for i := uint64(0); i < 50; i++ {
		s.Set(null, i, 16, 64, i, 0)
	}
	rec := trace.NewRecorder()
	s.Crawl(rec, 30)
	if rec.Loads < 30 {
		t.Fatalf("Crawl(30) loaded %d entries", rec.Loads)
	}
	if !rec.DistinctRegions["kv.lru_crawler"] {
		t.Fatal("Crawl did not execute the crawler region")
	}
}

func TestStorePanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore(0) did not panic")
		}
	}()
	NewStore(0, trace.NewCodeLayout())
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		NumKeys:   10,
		KeySize:   stats.Constant{V: 16},
		ValueSize: stats.Constant{V: 64},
		GetRatio:  0.9,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NumKeys: 0, KeySize: good.KeySize, ValueSize: good.ValueSize},
		{NumKeys: 10, ValueSize: good.ValueSize},
		{NumKeys: 10, KeySize: good.KeySize},
		{NumKeys: 10, KeySize: good.KeySize, ValueSize: good.ValueSize, GetRatio: 1.5},
		{NumKeys: 10, KeySize: good.KeySize, ValueSize: good.ValueSize, ChurnProb: -0.1},
		{NumKeys: 10, KeySize: good.KeySize, ValueSize: good.ValueSize, PopularitySkew: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
}

func TestPresetsValid(t *testing.T) {
	for _, c := range []Config{FacebookTarget(), TwitterTarget(), TailbenchDefault()} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
