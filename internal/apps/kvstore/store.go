// Package kvstore implements the memcached-like in-memory key-value store
// used by the mem-fb and mem-twtr workloads. It is a real hash table with
// chained buckets, a doubly-linked LRU list, slab allocation on the
// simulated heap, and a periodic LRU-crawler maintenance phase; every
// operation emits its memory accesses, instruction blocks, and
// data-dependent branches into a trace.Collector.
//
// Values are synthetic (this is a dataset *generator* substrate, mirroring
// the paper's use of mutilate-generated keys/values), so the store records
// per-entry value sizes and fingerprints rather than materializing hundreds
// of megabytes of random bytes; simulated addresses and sizes — the things
// that drive microarchitectural behavior — are tracked exactly.
package kvstore

import (
	"fmt"

	"datamime/internal/memsim"
	"datamime/internal/trace"
)

// entry is one cached item. The simulated layout mirrors memcached's item
// header: a 48-byte header plus separately-allocated key and value storage.
type entry struct {
	hash     uint64
	keyAddr  uint64
	valAddr  uint64
	keySize  int
	valSize  int
	fprint   uint64 // value fingerprint (stands in for the bytes)
	lruPrev  int32
	lruNext  int32
	bucket   int32
	occupied bool
}

// entryHeaderBytes is the simulated size of the item header.
const entryHeaderBytes = 48

// Store is the hash-table key-value store.
type Store struct {
	heap    *memsim.Heap
	buckets [][]int32 // bucket -> entry indices (chain order)
	bktAddr uint64    // simulated address of the bucket head array
	entries []entry
	free    []int32 // recycled entry slots

	lruHead int32
	lruTail int32
	count   int
	// code regions (the store's text footprint)
	code storeCode
}

// storeCode holds the store's instruction regions. Their sizes set the
// instruction footprint a request mix exercises; memcached's code is not
// cache-optimized, so the hot path spans well beyond a 32 KB L1I.
type storeCode struct {
	hash   *trace.CodeRegion
	lookup *trace.CodeRegion
	getHit *trace.CodeRegion
	getMis *trace.CodeRegion
	set    *trace.CodeRegion
	alloc  *trace.CodeRegion
	evict  *trace.CodeRegion
	lru    *trace.CodeRegion
	crawl  *trace.CodeRegion
}

// NewStore builds an empty store with the given number of hash buckets.
func NewStore(buckets int, layout *trace.CodeLayout) *Store {
	if buckets <= 0 {
		panic(fmt.Sprintf("kvstore: buckets must be positive, got %d", buckets))
	}
	h := memsim.NewHeap()
	s := &Store{
		heap:    h,
		buckets: make([][]int32, buckets),
		bktAddr: h.Alloc(8 * buckets),
		lruHead: -1,
		lruTail: -1,
		code: storeCode{
			hash:   layout.Region("kv.hash", 2<<10),
			lookup: layout.Region("kv.assoc_find", 4<<10),
			getHit: layout.Region("kv.process_get", 6<<10),
			getMis: layout.Region("kv.get_miss", 2<<10),
			set:    layout.Region("kv.process_update", 9<<10),
			alloc:  layout.Region("kv.slab_alloc", 5<<10),
			evict:  layout.Region("kv.item_evict", 7<<10),
			lru:    layout.Region("kv.lru_update", 3<<10),
			crawl:  layout.Region("kv.lru_crawler", 6<<10),
		},
	}
	return s
}

// Len returns the number of resident items.
func (s *Store) Len() int { return s.count }

// LiveBytes returns the simulated resident bytes (headers + keys + values).
func (s *Store) LiveBytes() uint64 { return s.heap.LiveBytes() }

// FootprintBreakdown returns the resident key, value, and header bytes of
// live entries — the snapshot composition the compression model uses.
func (s *Store) FootprintBreakdown() (keyBytes, valBytes, headerBytes int) {
	for i := range s.entries {
		e := &s.entries[i]
		if !e.occupied {
			continue
		}
		keyBytes += e.keySize
		valBytes += e.valSize
		headerBytes += entryHeaderBytes
	}
	return keyBytes, valBytes, headerBytes
}

// hashKey mixes a key id into a hash (keys are identified by their 64-bit
// id; the key *bytes* have the configured size and their own allocation).
func hashKey(id uint64) uint64 {
	id ^= id >> 33
	id *= 0xff51afd7ed558ccd
	id ^= id >> 29
	id *= 0xc4ceb9fe1a85ec53
	id ^= id >> 32
	return id
}

// Get looks up a key id, returning its value size and fingerprint. All
// traversal work is emitted into col.
func (s *Store) Get(col trace.Collector, id uint64) (valSize int, fprint uint64, ok bool) {
	h := hashKey(id)
	col.Exec(s.code.hash, 160)
	idx, keyLoads := s.find(col, h)
	if idx < 0 {
		col.Exec(s.code.getMis, 420)
		_ = keyLoads
		return 0, 0, false
	}
	e := &s.entries[idx]
	col.Exec(s.code.getHit, 1300)
	// LRU bump: unlink + relink at head (pointer stores on entry headers).
	s.lruBump(col, idx)
	// Read the value out.
	col.Load(e.valAddr, e.valSize)
	return e.valSize, e.fprint, true
}

// Set inserts or replaces a key id with a value of the given size and
// fingerprint. If budgetBytes > 0 and the store exceeds it, LRU entries are
// evicted until it fits (memcached's memory limit).
func (s *Store) Set(col trace.Collector, id uint64, keySize, valSize int, fprint uint64, budgetBytes uint64) {
	if keySize <= 0 {
		keySize = 1
	}
	if valSize <= 0 {
		valSize = 1
	}
	h := hashKey(id)
	col.Exec(s.code.hash, 160)
	idx, _ := s.find(col, h)
	col.Exec(s.code.set, 1700)
	if idx >= 0 {
		// Replace in place: free the old value, allocate the new one.
		e := &s.entries[idx]
		col.Exec(s.code.alloc, 550)
		s.heap.Free(e.valAddr, e.valSize)
		e.valAddr = s.heap.Alloc(valSize)
		e.valSize = valSize
		e.fprint = fprint
		col.Store(e.valAddr, valSize)
		col.Store(entryAddrOf(e), entryHeaderBytes)
		s.lruBump(col, idx)
		return
	}
	// Fresh insert.
	col.Exec(s.code.alloc, 950)
	ni := s.newEntry()
	e := &s.entries[ni]
	e.hash = h
	e.keySize = keySize
	e.valSize = valSize
	e.fprint = fprint
	e.keyAddr = s.heap.Alloc(keySize + entryHeaderBytes)
	e.valAddr = s.heap.Alloc(valSize)
	e.occupied = true
	col.Store(e.keyAddr, keySize+entryHeaderBytes)
	col.Store(e.valAddr, valSize)

	b := int32(h % uint64(len(s.buckets)))
	e.bucket = b
	s.buckets[b] = append(s.buckets[b], ni)
	col.Store(s.bktAddr+8*uint64(b), 8)
	s.lruInsertHead(col, ni)
	s.count++

	if budgetBytes > 0 {
		for s.heap.LiveBytes() > budgetBytes && s.count > 1 {
			s.evictTail(col)
		}
	}
}

// Delete removes a key id, reporting whether it was present.
func (s *Store) Delete(col trace.Collector, id uint64) bool {
	h := hashKey(id)
	col.Exec(s.code.hash, 160)
	idx, _ := s.find(col, h)
	if idx < 0 {
		return false
	}
	s.removeEntry(col, idx)
	return true
}

// find walks the hash chain for h, emitting the bucket-head load, per-entry
// header loads, and the data-dependent comparison branches.
func (s *Store) find(col trace.Collector, h uint64) (idx int32, keyLoads int) {
	b := h % uint64(len(s.buckets))
	col.Exec(s.code.lookup, 420)
	col.Load(s.bktAddr+8*b, 8)
	chain := s.buckets[b]
	for pos, ei := range chain {
		e := &s.entries[ei]
		col.Load(entryAddrOf(e), entryHeaderBytes)
		match := e.hash == h
		col.Branch(s.code.lookup.Base+uint64(pos%7), match)
		if match {
			// Full key compare: stream the key bytes.
			col.Load(e.keyAddr, e.keySize)
			col.Ops(e.keySize / 16)
			col.Branch(s.code.lookup.Base+64, true)
			keyLoads++
			return ei, keyLoads
		}
	}
	return -1, keyLoads
}

// entryAddrOf returns the simulated address of an entry's header, which
// coincides with its key allocation (memcached packs the header before the
// key bytes).
func entryAddrOf(e *entry) uint64 { return e.keyAddr }

// newEntry returns a fresh or recycled entry slot.
func (s *Store) newEntry() int32 {
	if n := len(s.free); n > 0 {
		i := s.free[n-1]
		s.free = s.free[:n-1]
		s.entries[i] = entry{lruPrev: -1, lruNext: -1}
		return i
	}
	s.entries = append(s.entries, entry{lruPrev: -1, lruNext: -1})
	return int32(len(s.entries) - 1)
}

// lruInsertHead links idx at the LRU head.
func (s *Store) lruInsertHead(col trace.Collector, idx int32) {
	col.Exec(s.code.lru, 260)
	e := &s.entries[idx]
	e.lruPrev = -1
	e.lruNext = s.lruHead
	if s.lruHead >= 0 {
		head := &s.entries[s.lruHead]
		head.lruPrev = idx
		col.Store(entryAddrOf(head)+16, 8)
	}
	s.lruHead = idx
	if s.lruTail < 0 {
		s.lruTail = idx
	}
	col.Store(entryAddrOf(e)+16, 16)
}

// lruUnlink removes idx from the LRU list.
func (s *Store) lruUnlink(col trace.Collector, idx int32) {
	e := &s.entries[idx]
	if e.lruPrev >= 0 {
		p := &s.entries[e.lruPrev]
		p.lruNext = e.lruNext
		col.Store(entryAddrOf(p)+16, 8)
	} else {
		s.lruHead = e.lruNext
	}
	if e.lruNext >= 0 {
		n := &s.entries[e.lruNext]
		n.lruPrev = e.lruPrev
		col.Store(entryAddrOf(n)+16, 8)
	} else {
		s.lruTail = e.lruPrev
	}
}

// lruBump moves idx to the LRU head (a GET/UPDATE touch).
func (s *Store) lruBump(col trace.Collector, idx int32) {
	if s.lruHead == idx {
		return
	}
	col.Exec(s.code.lru, 380)
	s.lruUnlink(col, idx)
	s.lruInsertHead(col, idx)
}

// evictTail removes the LRU tail entry (memory-limit eviction).
func (s *Store) evictTail(col trace.Collector) {
	if s.lruTail < 0 {
		return
	}
	col.Exec(s.code.evict, 1400)
	s.removeEntry(col, s.lruTail)
}

// removeEntry unlinks an entry from its chain and the LRU list and frees
// its storage.
func (s *Store) removeEntry(col trace.Collector, idx int32) {
	e := &s.entries[idx]
	// Chain unlink: walk the bucket to find the position (pointer chase).
	chain := s.buckets[e.bucket]
	for pos, ei := range chain {
		col.Load(entryAddrOf(&s.entries[ei]), 8)
		if ei == idx {
			s.buckets[e.bucket] = append(chain[:pos], chain[pos+1:]...)
			col.Store(s.bktAddr+8*uint64(e.bucket), 8)
			break
		}
	}
	s.lruUnlink(col, idx)
	s.heap.Free(e.keyAddr, e.keySize+entryHeaderBytes)
	s.heap.Free(e.valAddr, e.valSize)
	e.occupied = false
	s.free = append(s.free, idx)
	s.count--
}

// WarmScan touches every live entry's header, key, and value once, in
// LRU order from most to least recent — the state of a long-running
// server's caches (hot data last, hence most recently touched).
func (s *Store) WarmScan(col trace.Collector) {
	// Walk from tail (cold) to head (hot) so the hottest entries are the
	// most recently installed lines.
	idx := s.lruTail
	for idx >= 0 {
		e := &s.entries[idx]
		col.Load(entryAddrOf(e), e.keySize+entryHeaderBytes)
		col.Load(e.valAddr, e.valSize)
		idx = e.lruPrev
	}
}

// Crawl runs one LRU-crawler maintenance pass over up to n entries from the
// LRU tail — the periodic background work that gives memcached its
// time-varying activity phases.
func (s *Store) Crawl(col trace.Collector, n int) {
	col.Exec(s.code.crawl, 2600)
	idx := s.lruTail
	for i := 0; i < n && idx >= 0; i++ {
		e := &s.entries[idx]
		col.Load(entryAddrOf(e), entryHeaderBytes)
		col.Branch(s.code.crawl.Base, e.valSize > 1024)
		idx = e.lruPrev
	}
}
