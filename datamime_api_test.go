package datamime_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"datamime"
)

func TestMachinePresets(t *testing.T) {
	ms := datamime.Machines()
	if len(ms) != 3 {
		t.Fatalf("%d machines", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		names[m.Name] = true
	}
	for _, want := range []string{"broadwell", "zen2", "silvermont"} {
		if !names[want] {
			t.Fatalf("missing machine %s", want)
		}
	}
}

func TestGeneratorsExposed(t *testing.T) {
	if len(datamime.Generators()) != 4 {
		t.Fatal("expected four Table III generators")
	}
	g, err := datamime.GeneratorByName("memcached")
	if err != nil || g.Space.Dim() != 6 {
		t.Fatalf("memcached generator: %v, dim %d", err, g.Space.Dim())
	}
	if _, err := datamime.GeneratorByName("bogus"); err == nil {
		t.Fatal("unknown generator resolved")
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(datamime.Workloads()) != 5 || len(datamime.CaseStudyWorkloads()) != 2 {
		t.Fatal("workload registry wrong size")
	}
	if datamime.MemFB().Name != "mem-fb" {
		t.Fatal("MemFB misnamed")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := datamime.ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments", len(ids))
	}
	r := datamime.NewRunner(datamime.QuickSettings())
	var sb strings.Builder
	// Static tables run instantly and exercise the dispatch path.
	for _, id := range []string{"table1", "table2", "table3"} {
		if err := datamime.RunExperiment(r, id, &sb); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if err := datamime.RunExperiment(r, "nope", &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPublicProfilingPipeline(t *testing.T) {
	pr := datamime.NewProfiler(datamime.Broadwell())
	pr.WindowCycles = 120_000
	pr.Windows = 6
	pr.WarmupWindows = 1
	pr.SkipCurves = true
	p, err := pr.Profile(datamime.MemFB(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean(datamime.MetricIPC) <= 0 {
		t.Fatal("no IPC measured")
	}
	// The clone baseline is constructible from the public surface.
	clone := datamime.CloneBaseline(p, "clone")
	cp, err := pr.Profile(clone, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Mean(datamime.MetricCPUUtil) < 0.99 {
		t.Fatalf("clone util %g", cp.Mean(datamime.MetricCPUUtil))
	}
}

func TestPublicServiceSurface(t *testing.T) {
	// The datamimed service is constructible and drivable in-process from
	// the public surface alone.
	svc, err := datamime.NewService(datamime.ServiceConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	job, err := svc.Submit(datamime.JobSpec{
		Generator:   "memcached",
		Iterations:  3,
		Seed:        5,
		Optimizer:   "random",
		Metric:      string(datamime.MetricCPUUtil),
		MetricValue: 0.2,
		Profiling:   &datamime.ProfilingSpec{WindowCycles: 80_000, Windows: 3, WarmupWindows: 1, SkipCurves: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("service job did not finish")
	}
	if _, err := svc.Submit(datamime.JobSpec{Iterations: -1}); err == nil {
		t.Fatal("invalid job spec accepted")
	}

	// SearchContext + a shared evaluation cache, exercised publicly: the
	// second same-seed search is served entirely from the cache.
	cache := datamime.NewEvalCache(64)
	gen, err := datamime.GeneratorByName("memcached")
	if err != nil {
		t.Fatal(err)
	}
	pr := datamime.NewProfiler(datamime.Broadwell())
	pr.WindowCycles = 80_000
	pr.Windows = 3
	pr.WarmupWindows = 1
	pr.SkipCurves = true
	cfg := datamime.SearchConfig{
		Generator:  gen,
		Objective:  datamime.MetricObjective{Metric: datamime.MetricCPUUtil, Value: 0.2},
		Profiler:   pr,
		Iterations: 3,
		Seed:       5,
		Optimizer:  datamime.NewRandomSearch(gen.Space, 5),
		Cache:      cache,
	}
	if _, err := datamime.SearchContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Optimizer = datamime.NewRandomSearch(gen.Space, 5)
	res, err := datamime.SearchContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != res.Evaluations {
		t.Fatalf("cached rerun: %d hits for %d evaluations", res.CacheHits, res.Evaluations)
	}
}

func TestPublicExtensionSurface(t *testing.T) {
	// A custom server implemented purely against the public surface.
	layout := datamime.NewCodeLayout()
	region := layout.Region("custom.op", 2048)
	srv := &countingServer{code: region}
	bench := datamime.Benchmark{
		Name: "custom",
		QPS:  50_000,
		NewServer: func(*datamime.CodeLayout, uint64) datamime.Server {
			return srv
		},
	}
	m := datamime.NewMachine(datamime.Broadwell(), 100_000)
	res := datamime.Run(m, bench, srv, 3, 1, 0)
	if res.Requests == 0 || len(m.Samples()) < 3 {
		t.Fatalf("custom server did not run: %+v", res)
	}
	if srv.calls != res.Requests {
		t.Fatalf("handle calls %d != requests %d", srv.calls, res.Requests)
	}
}

// countingServer is a minimal public-API Server.
type countingServer struct {
	code  *datamime.CodeRegion
	calls int
}

func (c *countingServer) Name() string { return "counting" }
func (c *countingServer) Handle(col datamime.Collector, rng *datamime.RNG) {
	c.calls++
	col.Exec(c.code, 500)
	col.Load(0x30000000, 256)
	col.Branch(c.code.Base, rng.Bool(0.5))
}

func TestPublicStatsHelpers(t *testing.T) {
	if d := datamime.EMD([]float64{0, 0}, []float64{1, 1}); d != 1 {
		t.Fatalf("EMD = %g", d)
	}
	if d := datamime.NormalizedEMD([]float64{0, 0}, []float64{2, 2}); d != 1 {
		t.Fatalf("NormalizedEMD = %g", d)
	}
	z := datamime.NewZipf(10, 1)
	rng := datamime.NewRNG(1)
	if k := z.Sample(rng); k < 0 || k >= 10 {
		t.Fatalf("zipf sample %d", k)
	}
	var dist datamime.Distribution = datamime.GPareto{Loc: 1, Scale: 2, Shape: 0.1}
	if dist.Sample(rng) < 1 {
		t.Fatal("GPareto below location")
	}
	space, err := datamime.NewSpace(datamime.Param{Name: "x", Lo: 0, Hi: 1})
	if err != nil || space.Dim() != 1 {
		t.Fatal("NewSpace broken")
	}
	if datamime.NewBayesOpt(space, 1).Name() != "bayesopt" {
		t.Fatal("bayesopt constructor broken")
	}
	if datamime.NewRandomSearch(space, 1).Name() != "random" {
		t.Fatal("random-search constructor broken")
	}
}
