#!/usr/bin/env bash
# fleet_gate.sh — CI gate for the distributed evaluation plane.
#
# Starts a datamimed coordinator with a two-worker datamime-worker fleet,
# runs a seeded search dispatched across it (killing one worker mid-job to
# exercise graceful degradation), then runs the same seed on a SEPARATE
# local-backend coordinator and requires `datamime-inspect diff -exact` to
# find the two run artifacts identical. Separate coordinators matter: a
# shared one would serve the second run entirely from the evaluation cache.
#
# Expects bin/datamimed, bin/datamime-worker, and bin/datamime-inspect to be
# prebuilt (see .github/workflows/ci.yml), but builds them if missing so the
# script also runs standalone from the repo root.
set -euo pipefail

COORD_A=127.0.0.1:18080
COORD_B=127.0.0.1:18081
WORKER_1=127.0.0.1:19091
WORKER_2=127.0.0.1:19092

for tool in datamimed datamime-worker datamime-inspect; do
  [ -x "bin/$tool" ] || go build -o "bin/$tool" "./cmd/$tool"
done

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

# json FIELD: extract one top-level field from the JSON on stdin.
json() {
  python3 -c 'import json,sys; print(json.load(sys.stdin)["'"$1"'"])'
}

wait_http() { # wait_http URL [PATTERN]
  for _ in $(seq 1 100); do
    if body=$(curl -fs "$1" 2>/dev/null) && { [ -z "${2:-}" ] || grep -q "$2" <<<"$body"; }; then
      return 0
    fi
    sleep 0.2
  done
  echo "timed out waiting for $1 ${2:+(pattern $2)}" >&2
  return 1
}

# run_job COORDINATOR SPEC_FILE OUT_ARTIFACT: submit, poll to completion,
# export the artifact. Prints the job ID.
run_job() {
  local coord=$1 spec=$2 out=$3 id state
  id=$(curl -fs -X POST -H 'Content-Type: application/json' \
    --data-binary "@$spec" "http://$coord/jobs" | json id)
  for _ in $(seq 1 300); do
    state=$(curl -fs "http://$coord/jobs/$id" | json state)
    case "$state" in
      succeeded) break ;;
      failed|canceled)
        echo "job $id on $coord ended $state:" >&2
        curl -fs "http://$coord/jobs/$id" >&2
        return 1 ;;
    esac
    sleep 1
  done
  [ "$state" = succeeded ] || { echo "job $id on $coord timed out in state $state" >&2; return 1; }
  curl -fs "http://$coord/jobs/$id/artifact" > "$out"
  echo "$id"
}

# The seeded search: small profiling budget keeps the gate fast; the seed
# and spec are byte-identical between the two runs except for the backend.
cat > spec-fleet.json <<'EOF'
{
  "generator": "memcached",
  "iterations": 8,
  "parallel": 2,
  "seed": 1,
  "optimizer": "random",
  "metric": "cpu_util",
  "metric_value": 0.15,
  "backend": "remote",
  "profiling": {"window_cycles": 60000, "windows": 4, "warmup_windows": 1, "skip_curves": true}
}
EOF
sed 's/"backend": "remote"/"backend": "local"/' spec-fleet.json > spec-local.json

echo "== starting coordinator A (fleet, telemetry on, corpus in corpus-a) on $COORD_A"
rm -rf corpus-a
bin/datamimed -addr "$COORD_A" -workers 1 -quiet -telemetry -federation-interval 2s \
  -corpus-dir corpus-a &
PIDS+=($!)
wait_http "http://$COORD_A/healthz"

echo "== starting 2 datamime-worker processes"
bin/datamime-worker -addr "$WORKER_1" -name w1 -profile-workers 2 \
  -coordinator "http://$COORD_A" -advertise "http://$WORKER_1" &
PIDS+=($!)
bin/datamime-worker -addr "$WORKER_2" -name w2 -profile-workers 2 \
  -coordinator "http://$COORD_A" -advertise "http://$WORKER_2" &
WORKER_2_PID=$!
PIDS+=($WORKER_2_PID)
wait_http "http://$COORD_A/v1/workers" '"w1"'
wait_http "http://$COORD_A/v1/workers" '"w2"'

echo "== running the seeded search on the fleet (worker 2 dies mid-job)"
( sleep 3; echo "== killing worker 2"; kill "$WORKER_2_PID" 2>/dev/null || true ) &
FLEET_JOB=$(run_job "$COORD_A" spec-fleet.json run-fleet.jsonl)
echo "== fleet job $FLEET_JOB succeeded"
curl -fs "http://$COORD_A/v1/workers"

echo "== fleet health view"
curl -fs "http://$COORD_A/v1/fleet"
echo "== federated metrics (datamime_worker_* families)"
curl -fs "http://$COORD_A/metrics" | grep '^datamime_worker_' || {
  echo "no federated worker metrics in coordinator /metrics" >&2; exit 1; }

echo "== exporting and validating the unified fleet trace"
curl -fs "http://$COORD_A/jobs/$FLEET_JOB/trace" > fleet-trace.json
bin/datamime-inspect timeline -artifact run-fleet.jsonl -trace fleet-trace.json
grep -q '"fleet worker' fleet-trace.json || {
  echo "fleet trace has no per-worker process tracks" >&2; exit 1; }

echo "== corpus gate: re-run the same seed on coordinator A and compare records"
FLEET_JOB_2=$(run_job "$COORD_A" spec-fleet.json run-fleet-2.jsonl)
echo "== second fleet job $FLEET_JOB_2 succeeded (cache-served re-run)"
curl -fs "http://$COORD_A/v1/corpus" > corpus-list.json
python3 - corpus-list.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
runs = doc["runs"]
assert len(runs) == 2 and doc["total"] == 2, f"corpus has {len(runs)}/{doc['total']} runs, want 2"
a, b = runs
assert a["scenario"] == b["scenario"], f"scenario hashes differ: {a['scenario']} vs {b['scenario']}"
assert a["best_error"] == b["best_error"], f"best error drifted: {a['best_error']} vs {b['best_error']}"
assert a["trajectory_hash"] == b["trajectory_hash"], "trajectories not bit-identical"
assert a["verdict"] == "baseline" and b["verdict"] == "identical", \
    f"verdicts {a['verdict']}/{b['verdict']}, want baseline/identical"
print(f"corpus ok: 2 runs of scenario {a['scenario']}, best error {a['best_error']}, verdict identical")
EOF
curl -fs "http://$COORD_A/metrics" > corpus-metrics.txt
grep -q '^datamimed_corpus_runs_indexed_total 2$' corpus-metrics.txt || {
  echo "corpus indexed-runs counter is not 2:" >&2
  grep corpus corpus-metrics.txt >&2 || true; exit 1; }
grep -q '^datamimed_corpus_regressions_total 0$' corpus-metrics.txt || {
  echo "corpus regression watchdog fired on identical runs:" >&2
  grep corpus corpus-metrics.txt >&2 || true; exit 1; }

echo "== rendering the corpus trends + HTML scoreboard"
bin/datamime-inspect corpus list -dir corpus-a
bin/datamime-inspect corpus trends -dir corpus-a -title "fleet gate" -html scoreboard.html
grep -q 'datamime corpus scoreboard' scoreboard.html || {
  echo "scoreboard.html missing its header" >&2; exit 1; }

echo "== starting coordinator B (local backend) on $COORD_B"
bin/datamimed -addr "$COORD_B" -workers 1 -quiet &
PIDS+=($!)
wait_http "http://$COORD_B/healthz"
LOCAL_JOB=$(run_job "$COORD_B" spec-local.json run-local.jsonl)
echo "== local job $LOCAL_JOB succeeded"

echo "== determinism gate: fleet artifact must be exactly identical to local"
bin/datamime-inspect diff -a run-local.jsonl -b run-fleet.jsonl -exact
echo "== fleet gate passed"
