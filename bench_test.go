// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark runs
// the corresponding experiment through a shared, caching Runner with Quick
// settings, so `go test -bench=.` reproduces the full evaluation at reduced
// budgets; the cmd/experiments CLI runs the same experiments at paper
// fidelity.
package datamime_test

import (
	"io"
	"sync"
	"testing"

	"datamime"
)

var (
	benchOnce   sync.Once
	benchRunner *datamime.Runner
)

// runner returns the shared experiment runner; searches and profiles are
// computed once and cached across benchmarks.
func runner() *datamime.Runner {
	benchOnce.Do(func() {
		benchRunner = datamime.NewRunner(datamime.QuickSettings())
	})
	return benchRunner
}

// runExperiment drives one experiment b.N times (cached after the first).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r := runner()
	for i := 0; i < b.N; i++ {
		if err := datamime.RunExperiment(r, id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 1: mem-fb IPC and ICache MPKI across schemes (Broadwell + Zen 2).
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "fig1") }

// Figure 3: IPC of all schemes across the three machines, five workloads.
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3") }

// Figure 4: mem-fb CPU-utilization and memory-bandwidth eCDFs.
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "fig4") }

// Table I: profiler metric registry.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// Table II: simulated machine specifications.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// Table III: dataset-generator parameter spaces.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// Figure 6: per-metric averages normalized to the target, five workloads,
// and the headline IPC MAPE summary.
func BenchmarkFigure6(b *testing.B) {
	runExperiment(b, "fig6")
	dm, pp, err := benchIPCSummary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*dm, "datamime-ipc-mape-%")
	b.ReportMetric(100*pp, "perfprox-ipc-mape-%")
}

// benchIPCSummary recomputes the headline errors from the cached profiles.
func benchIPCSummary() (dm, pp float64, err error) {
	return runner().IPCErrorSummary()
}

// Figure 7: IPC and LLC MPKI cache-sensitivity curves, five workloads.
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7") }

// Figure 8: eCDFs of six key metrics for every workload.
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8") }

// Figure 9: case-study sensitivity curves (masstree via memcached, img-dnn
// via dnn).
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9") }

// Table IV: all metrics for the case-study targets.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// Figure 10: minimum observed total EMD vs. search iteration.
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

// Figure 11: achievable IPC and LLC MPKI ranges per generator.
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11") }

// Figure 12: networked mem-fb key metrics.
func BenchmarkFigure12(b *testing.B) { runExperiment(b, "fig12") }

// Figure 13: networked mem-fb sensitivity curves.
func BenchmarkFigure13(b *testing.B) { runExperiment(b, "fig13") }

// Ablation: Bayesian optimization vs. random search vs. annealing.
func BenchmarkAblationOptimizers(b *testing.B) { runExperiment(b, "ablation-optimizers") }

// Ablation: distribution-matching EMD vs. mean-only error model.
func BenchmarkAblationAverageOnlyError(b *testing.B) { runExperiment(b, "ablation-error-model") }

// Ablation: metric weighting (the §V-C img-dnn trade-off).
func BenchmarkAblationWeights(b *testing.B) { runExperiment(b, "ablation-weights") }

// Ablation: EMD vs Kolmogorov–Smirnov distribution distance.
func BenchmarkAblationDistance(b *testing.B) { runExperiment(b, "ablation-distance") }

// Extension (§III-D future work): compression-aware dataset generation.
func BenchmarkExtCompression(b *testing.B) { runExperiment(b, "ext-compression") }
